// Package obs is the observability layer of the reproduction: a
// zero-dependency, allocation-light event stream threaded through every
// storage subsystem (stable devices, the stable log and its force
// scheduler, both log organizations, shadowing, guardians, two-phase
// commit, and the simulated network).
//
// The thesis argues its organizations entirely in terms of observable
// event sequences — forces paid per commit (§1.2, §4.1), recovery
// phases walking the PT/CT/OT, 2PC message rounds (§2.2). This package
// makes those sequences first-class: each subsystem emits typed Events
// into a Tracer, and consumers either record them (Recorder), aggregate
// them (Stats), or verify thesis invariants over them at runtime
// (Checker), complementing the static enforcement of cmd/roslint.
//
// Determinism contract: events carry no wall-clock timestamps — only a
// logical sequence number assigned by the consuming sink — and every
// field of an Event is a pure function of the emitting operation, so a
// deterministic schedule (the crash sweep's serial, synchronous-force
// schedule) produces a byte-for-byte reproducible trace, diffable as a
// golden file. The package is in the determinism analyzer's scope.
//
// Nil-tracer fast path: subsystems hold a Tracer field that is nil by
// default and guard every emission with a nil check, so an untraced run
// pays one predictable branch and zero allocations per would-be event
// (see BenchmarkTraceOff).
package obs

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/ids"
)

// Kind identifies the type of an Event.
type Kind uint8

// Event kinds. The zero Kind is invalid, so an accidentally
// zero-valued Event is detectable.
const (
	// KindLogOpen marks a tracer being attached to a stable log: its
	// Durable field snapshots the log's current durable boundary.
	// Emitted on initial attach, after crash-recovery reopens a log,
	// and when housekeeping switches to a new log generation; the
	// Checker resets its per-guardian durable boundary here.
	KindLogOpen Kind = iota + 1
	// KindLogAppend is one buffered entry append (stablelog.Write).
	// LSN is the entry address; Bytes is the full frame length, so the
	// per-guardian sum of Bytes matches Log.Size.
	KindLogAppend
	// KindForceStart opens a non-empty force round: Durable is the
	// boundary before the round, LSN the last appended entry the
	// round's snapshot covers, Bytes the buffered byte count to flush.
	KindForceStart
	// KindForceDone closes a force round. On success (OK) Durable is
	// the new boundary and LSN the covered entry; exactly one OK
	// ForceDone is emitted per counted force (Log.Forces), so event
	// counts and the ad-hoc counters agree. On device error OK is
	// false and Durable names the unchanged boundary.
	KindForceDone
	// KindForceWait is a ForceTo caller riding a force round led by
	// another caller (group commit). Never emitted under the sweep's
	// serial schedule, where every force is synchronous.
	KindForceWait
	// KindOutcomeAppend is an outcome entry (prepared, committed,
	// aborted, committing, done) appended to a recovery system's log;
	// Code is the OutcomeKind, LSN the entry address.
	KindOutcomeAppend
	// KindOutcomeDurable is an outcome acknowledged durable: emitted
	// only after the force covering the entry at LSN returned
	// successfully. The Checker's force barrier rule fires if the
	// traced durable boundary does not cover LSN.
	KindOutcomeDurable
	// KindCritEnter / KindCritExit bracket a recovery-system writer
	// critical section (the writer mutex). The simple and hybrid log
	// writers emit them; the shadow store does not — it holds its lock
	// across forces by design (§1.2.1), exactly mirroring roslint's
	// lockdiscipline scope.
	KindCritEnter
	KindCritExit
	// KindRecoveryStart opens a crash-recovery session for a guardian.
	KindRecoveryStart
	// KindRecoveryPhase marks entry to a recovery phase; Code is the
	// Phase. Phases must be nondecreasing within a session (thesis
	// order: repair, open-log, scan, materialize, rebuild, resume).
	KindRecoveryPhase
	// KindTwoPCPrepare is the coordinator sending a prepare request;
	// From is the coordinator guardian, To the participant.
	KindTwoPCPrepare
	// KindTwoPCVote is a participant's vote as received by the
	// coordinator; Code is the Vote.
	KindTwoPCVote
	// KindTwoPCOutcome is the coordinator's decision; Code is
	// TwoPCCommitted or TwoPCAborted.
	KindTwoPCOutcome
	// KindNetCall is one simulated network call; From and To are
	// guardian ids, OK is false when the destination was unreachable.
	// Emitted before the handler runs, so a participant's nested
	// events follow their triggering call in the stream.
	KindNetCall
	// KindFaultInjected is a stable-device fault taking effect; Code
	// is the FaultCode and LSN carries the block number.
	KindFaultInjected
	// KindHousekeepStart / KindHousekeepDone bracket a housekeeping
	// run (§5.1/§5.2); Code is HousekeepCompact or HousekeepSnapshot.
	// Bytes on Done is the new log's size.
	KindHousekeepStart
	KindHousekeepDone
	// KindRPCAccept is the rosd server accepting (OK) or refusing
	// (!err, at the connection limit) a TCP connection; From is the
	// connection's serial number.
	KindRPCAccept
	// KindRPCDispatch is a decoded request entering the worker pool;
	// From is the connection serial, Code the RPCOp, Bytes the frame
	// payload length.
	KindRPCDispatch
	// KindRPCReply is a response leaving the server; From is the
	// connection serial, Code the RPCStatus, OK is Code==RPCOK.
	KindRPCReply
	// KindRPCTimeout is a connection read/write missing its deadline;
	// From is the connection serial.
	KindRPCTimeout
	// KindRPCRetry is a client retrying a request after a transient
	// failure; Code is the attempt number just failed (1-based).
	KindRPCRetry
	// KindRPCDrain brackets server shutdown: emitted once when the
	// drain begins (Bytes = connections open at that moment) and once
	// when it completes (Bytes = 0, OK set).
	KindRPCDrain
	// KindRepSend is a primary shipping a run of log frames to one
	// backup; From/To are the primary and replica ids, Durable the
	// offset the run starts at, Bytes its length.
	KindRepSend
	// KindRepRecv is a backup having validated, applied, and forced a
	// shipped run; Durable is its new durable boundary, Bytes the run
	// length.
	KindRepRecv
	// KindRepAck is the primary processing one replica's durability
	// acknowledgment; From/To as on the send, Durable the replica's
	// acked boundary.
	KindRepAck
	// KindRepQuorum closes a replication round: Durable is the largest
	// prefix a quorum has durably acked, OK whether that covers the
	// round's target (the primary's durable boundary when the round
	// began). The Checker's R4 requires one of these, covering the
	// LSN, before any outcome.durable on a replicated guardian.
	KindRepQuorum
	// KindRepPromote is a backup taking over as primary: Durable is
	// the received prefix it recovers from (the recovery.* events of
	// the takeover follow it in the stream).
	KindRepPromote
	// KindRepCatchup is a lagging or rejoining replica being brought
	// current: on the primary, Durable is the replica's boundary after
	// catch-up and Bytes the gap shipped; on a backup it marks the
	// log reset of an accepted snapshot offer (Durable 0).
	KindRepCatchup
	// KindShardRoute is a routing table being served (OpRoute) or
	// offered (OpRouteInstall); Durable carries the table version, From
	// the requesting connection serial where known.
	KindShardRoute
	// KindShardWrong is a request refused because the node does not
	// host the addressed shard; From is the shard id, Durable the
	// version of the table returned in-band. Emitted by servers on the
	// refusal and by routed clients on receiving one (Gid tells them
	// apart).
	KindShardWrong
	// KindShardInstall is a routing table actually replacing a node's
	// or client's current one; Durable is the new version, Bytes the
	// table's shard count. A refused stale install emits no event —
	// the table did not change.
	KindShardInstall
	// KindShardHandoff brackets a shard moving between nodes: the
	// source emits Note "begin" when the handoff starts (From = shard
	// id, Bytes = compacted log size to ship) and Note "publish" when
	// the rehomed table goes out (Durable = new table version); the
	// receiver emits Note "adopt" when it recovers the guardian.
	KindShardHandoff
	// KindIdxHit / KindIdxMiss are a live-version index lookup being
	// served from memory (Bytes = flattened value size) or falling
	// through to the action-path device read (Note = the key).
	KindIdxHit
	KindIdxMiss
	// KindIdxInstall is a committed version entering the index at the
	// §2.2.3 point of no return; LSN is the guardian's durable log
	// boundary, Bytes the flattened size, Note the object UID.
	KindIdxInstall
	// KindIdxRebuild is the index being rebuilt whole from recovered
	// committed state (restart, promotion, or handoff adoption); LSN
	// is the durable boundary rebuilt from, Bytes the total indexed
	// size.
	KindIdxRebuild

	kindMax
)

var kindNames = [...]string{
	KindLogOpen:        "log.open",
	KindLogAppend:      "log.append",
	KindForceStart:     "force.start",
	KindForceDone:      "force.done",
	KindForceWait:      "force.wait",
	KindOutcomeAppend:  "outcome.append",
	KindOutcomeDurable: "outcome.durable",
	KindCritEnter:      "crit.enter",
	KindCritExit:       "crit.exit",
	KindRecoveryStart:  "recovery.start",
	KindRecoveryPhase:  "recovery.phase",
	KindTwoPCPrepare:   "twopc.prepare",
	KindTwoPCVote:      "twopc.vote",
	KindTwoPCOutcome:   "twopc.outcome",
	KindNetCall:        "net.call",
	KindFaultInjected:  "fault.injected",
	KindHousekeepStart: "housekeep.start",
	KindHousekeepDone:  "housekeep.done",
	KindRPCAccept:      "rpc.accept",
	KindRPCDispatch:    "rpc.dispatch",
	KindRPCReply:       "rpc.reply",
	KindRPCTimeout:     "rpc.timeout",
	KindRPCRetry:       "rpc.retry",
	KindRPCDrain:       "rpc.drain",
	KindRepSend:        "rep.send",
	KindRepRecv:        "rep.recv",
	KindRepAck:         "rep.ack",
	KindRepQuorum:      "rep.quorum",
	KindRepPromote:     "rep.promote",
	KindRepCatchup:     "rep.catchup",
	KindShardRoute:     "shard.route",
	KindShardWrong:     "shard.wrong",
	KindShardInstall:   "shard.install",
	KindShardHandoff:   "shard.handoff",
	KindIdxHit:         "idx.hit",
	KindIdxMiss:        "idx.miss",
	KindIdxInstall:     "idx.install",
	KindIdxRebuild:     "idx.rebuild",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Phase is a recovery phase, in thesis order (§3.4.4): repair the
// stable stores, open the log (discarding any torn tail), scan the log
// entries, materialize the object table into a heap, rebuild the
// derived tables (AS, PAT, PT/CT), resume service.
type Phase uint8

const (
	PhaseRepair Phase = iota + 1
	PhaseOpenLog
	PhaseScan
	PhaseMaterialize
	PhaseRebuild
	PhaseResume
)

var phaseNames = [...]string{
	PhaseRepair:      "repair",
	PhaseOpenLog:     "open-log",
	PhaseScan:        "scan",
	PhaseMaterialize: "materialize",
	PhaseRebuild:     "rebuild",
	PhaseResume:      "resume",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) && phaseNames[p] != "" {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// OutcomeKind classifies an outcome entry. It mirrors the outcome
// entry kinds of package logrec without importing it (logrec sits
// above stablelog, which emits into this package).
type OutcomeKind uint8

const (
	OutcomePrepared OutcomeKind = iota + 1
	OutcomeCommitted
	OutcomeAborted
	OutcomeCommitting
	OutcomeDone
)

var outcomeNames = [...]string{
	OutcomePrepared:   "prepared",
	OutcomeCommitted:  "committed",
	OutcomeAborted:    "aborted",
	OutcomeCommitting: "committing",
	OutcomeDone:       "done",
}

func (o OutcomeKind) String() string {
	if int(o) < len(outcomeNames) && outcomeNames[o] != "" {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Vote codes for KindTwoPCVote events (Code field).
const (
	VotePrepared uint8 = iota + 1
	VoteAborted
	VoteReadOnly
)

// Decision codes for KindTwoPCOutcome events (Code field).
const (
	TwoPCCommitted uint8 = iota + 1
	TwoPCAborted
)

// FaultCode values for KindFaultInjected events (Code field).
const (
	FaultTorn uint8 = iota + 1
	FaultCrash
	FaultReadTransient
	FaultReadDecay
	FaultDecay
)

// HousekeepKind codes for housekeeping events (Code field).
const (
	HousekeepCompact uint8 = iota + 1
	HousekeepSnapshot
)

// RPCOp codes for KindRPCDispatch events (Code field). They mirror
// the wire.Op values without importing the package (obs sits below
// the serving layer, as it does below logrec).
const (
	RPCPing uint8 = iota + 1
	RPCInvoke
	RPCPrepare
	RPCCommit
	RPCAbort
	RPCOutcome
	RPCRepAppend
	RPCRepHeartbeat
	RPCRepSnapshot
	RPCStatus
	RPCPromote
	RPCRoute
	RPCRouteInstall
	RPCBegin
	RPCCommitting
	RPCDone
	RPCHandoff
	RPCHandoffInstall
	RPCGet
)

var rpcOpNames = [...]string{
	RPCPing:           "ping",
	RPCInvoke:         "invoke",
	RPCPrepare:        "prepare",
	RPCCommit:         "commit",
	RPCAbort:          "abort",
	RPCOutcome:        "outcome",
	RPCRepAppend:      "rep.append",
	RPCRepHeartbeat:   "rep.heartbeat",
	RPCRepSnapshot:    "rep.snapshot",
	RPCStatus:         "status",
	RPCPromote:        "promote",
	RPCRoute:          "route",
	RPCRouteInstall:   "route.install",
	RPCBegin:          "begin",
	RPCCommitting:     "committing",
	RPCDone:           "done",
	RPCHandoff:        "handoff",
	RPCHandoffInstall: "handoff.install",
	RPCGet:            "get",
}

// RPCStatus codes for KindRPCReply events (Code field), mirroring
// wire.Status.
const (
	RPCOK uint8 = iota + 1
	RPCRetryable
	RPCError
	RPCBadRequest
	RPCWrongShard
)

var rpcStatusNames = [...]string{
	RPCOK:         "ok",
	RPCRetryable:  "retry",
	RPCError:      "error",
	RPCBadRequest: "bad-request",
	RPCWrongShard: "wrong-shard",
}

// NoLSN is the nil log address in an Event (stablelog.NoLSN as a raw
// uint64).
const NoLSN = ^uint64(0)

// Event is one observation. It is a flat value — no pointers beyond
// the optional Note — so emitting into a recording sink costs one
// slice append and no per-field allocation. Field use varies by Kind;
// unused fields are zero and omitted from the text rendering.
type Event struct {
	// Seq is the logical sequence number, assigned by the consuming
	// sink (Recorder), not the emitter. Never a timestamp.
	Seq uint64
	// Kind is the event type.
	Kind Kind
	// Gid is the emitting guardian (0 when not guardian-scoped, e.g.
	// device faults on a shared volume). Stamped by WithGuardian.
	Gid uint64
	// AID is the acting action, for outcome and 2PC events.
	AID ids.ActionID
	// From and To are guardian ids for network and 2PC events.
	From, To uint64
	// LSN is a log address (or a block number for FaultInjected).
	LSN uint64
	// Durable is a log durable-boundary byte offset.
	Durable uint64
	// Bytes is a byte count (frame length, forced bytes, log size).
	Bytes int
	// Code is a Kind-dependent enum: OutcomeKind, Phase, Vote,
	// decision, FaultCode, or HousekeepKind.
	Code uint8
	// OK is false when the traced operation failed (force error,
	// refused network call).
	OK bool
	// Note is optional free-form detail; empty on hot-path events.
	Note string
}

// codeWord renders the Code field as the word its Kind gives it.
func (e Event) codeWord() string {
	switch e.Kind {
	case KindOutcomeAppend, KindOutcomeDurable:
		return OutcomeKind(e.Code).String()
	case KindRecoveryPhase:
		return Phase(e.Code).String()
	case KindTwoPCVote:
		switch e.Code {
		case VotePrepared:
			return "prepared"
		case VoteAborted:
			return "aborted"
		case VoteReadOnly:
			return "read-only"
		}
	case KindTwoPCOutcome:
		switch e.Code {
		case TwoPCCommitted:
			return "committed"
		case TwoPCAborted:
			return "aborted"
		}
	case KindFaultInjected:
		switch e.Code {
		case FaultTorn:
			return "torn"
		case FaultCrash:
			return "crash"
		case FaultReadTransient:
			return "read-transient"
		case FaultReadDecay:
			return "read-decay"
		case FaultDecay:
			return "decay"
		}
	case KindHousekeepStart, KindHousekeepDone:
		switch e.Code {
		case HousekeepCompact:
			return "compact"
		case HousekeepSnapshot:
			return "snapshot"
		}
	case KindRPCDispatch:
		if int(e.Code) < len(rpcOpNames) && rpcOpNames[e.Code] != "" {
			return rpcOpNames[e.Code]
		}
	case KindRPCReply:
		if int(e.Code) < len(rpcStatusNames) && rpcStatusNames[e.Code] != "" {
			return rpcStatusNames[e.Code]
		}
	}
	return strconv.Itoa(int(e.Code))
}

// Text renders the event as its deterministic text line (no trailing
// newline) — one line of the golden-file format, for streaming sinks
// like rosd's -trace flag.
func (e Event) Text() string { return string(e.appendText(nil)) }

// appendText renders the event as one deterministic text line (no
// trailing newline): the sequence number, the kind, then only the
// fields the event uses, in a fixed order. This is the golden-file
// format.
func (e Event) appendText(b []byte) []byte {
	b = append(b, fmt.Sprintf("%4d ", e.Seq)...)
	b = append(b, e.Kind.String()...)
	if e.Gid != 0 {
		b = append(b, " gid="...)
		b = strconv.AppendUint(b, e.Gid, 10)
	}
	if !e.AID.IsZero() {
		b = append(b, " aid="...)
		b = append(b, e.AID.String()...)
	}
	if e.From != 0 || e.To != 0 {
		b = append(b, " from="...)
		b = strconv.AppendUint(b, e.From, 10)
		b = append(b, " to="...)
		b = strconv.AppendUint(b, e.To, 10)
	}
	switch e.Kind {
	case KindLogAppend, KindForceStart, KindForceDone, KindForceWait,
		KindOutcomeAppend, KindOutcomeDurable, KindFaultInjected,
		KindIdxInstall, KindIdxRebuild:
		b = append(b, " lsn="...)
		if e.LSN == NoLSN {
			b = append(b, "nil"...)
		} else {
			b = strconv.AppendUint(b, e.LSN, 10)
		}
	}
	switch e.Kind {
	case KindLogOpen, KindForceStart, KindForceDone,
		KindRepSend, KindRepRecv, KindRepAck, KindRepQuorum,
		KindRepPromote, KindRepCatchup:
		b = append(b, " durable="...)
		b = strconv.AppendUint(b, e.Durable, 10)
	// The shard kinds reuse Durable for the routing-table version, so
	// the rendering says what the number means.
	case KindShardRoute, KindShardWrong, KindShardInstall, KindShardHandoff:
		b = append(b, " version="...)
		b = strconv.AppendUint(b, e.Durable, 10)
	}
	if e.Bytes != 0 {
		b = append(b, " bytes="...)
		b = strconv.AppendInt(b, int64(e.Bytes), 10)
	}
	switch e.Kind {
	case KindOutcomeAppend, KindOutcomeDurable, KindRecoveryPhase,
		KindTwoPCVote, KindTwoPCOutcome, KindFaultInjected,
		KindHousekeepStart, KindHousekeepDone,
		KindRPCDispatch, KindRPCReply, KindRPCRetry:
		b = append(b, ' ')
		b = append(b, e.codeWord()...)
	}
	// Only the kinds that report success carry the OK bit; on the rest
	// it is always false and says nothing.
	switch e.Kind {
	case KindForceDone, KindNetCall, KindTwoPCVote, KindHousekeepDone,
		KindRPCAccept, KindRPCReply, KindRPCDrain, KindRepQuorum:
		if !e.OK {
			b = append(b, " !err"...)
		}
	}
	if e.Note != "" {
		b = append(b, " ("...)
		b = append(b, e.Note...)
		b = append(b, ')')
	}
	return b
}

// String renders the event as its one-line text form.
func (e Event) String() string { return string(e.appendText(nil)) }

// Tracer consumes events. Implementations must be safe for concurrent
// use; emitters may call Emit while holding subsystem locks, so a
// Tracer must never call back into the storage stack.
type Tracer interface {
	Emit(Event)
}

// guardianTracer stamps every event with a guardian id before
// forwarding.
type guardianTracer struct {
	tr  Tracer
	gid uint64
}

func (g guardianTracer) Emit(e Event) {
	if e.Gid == 0 {
		e.Gid = g.gid
	}
	g.tr.Emit(e)
}

// WithGuardian returns a Tracer that stamps gid on events whose Gid is
// unset, then forwards to tr. A nil tr yields nil, preserving the
// nil-tracer fast path.
func WithGuardian(tr Tracer, gid uint64) Tracer {
	if tr == nil {
		return nil
	}
	return guardianTracer{tr: tr, gid: gid}
}

// Stats is a Tracer that aggregates the stream into per-kind counters
// and byte gauges — the trace-derived equivalents of the storage
// stack's ad-hoc counters (Log.Forces, Log.Size, netsim.Stats).
type Stats struct {
	mu       sync.Mutex
	counts   [kindMax]uint64
	appended uint64 // sum of LogAppend bytes (frame lengths)
	forced   uint64 // sum of successful ForceDone bytes
	failed   uint64 // ForceDone events with OK == false
}

// Emit implements Tracer.
func (s *Stats) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(e.Kind) < len(s.counts) {
		s.counts[e.Kind]++
	}
	switch e.Kind {
	case KindLogAppend:
		s.appended += uint64(e.Bytes)
	case KindForceDone:
		if e.OK {
			s.forced += uint64(e.Bytes)
		} else {
			s.counts[e.Kind]--
			s.failed++
		}
	}
}

// Count returns how many events of kind k were observed. For
// KindForceDone only successful rounds count, matching Log.Forces.
func (s *Stats) Count(k Kind) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(k) >= len(s.counts) {
		return 0
	}
	return s.counts[k]
}

// AppendedBytes returns the total bytes appended (frame lengths), the
// trace-derived equivalent of summing Log.Size deltas.
func (s *Stats) AppendedBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// ForcedBytes returns the total bytes flushed by successful force
// rounds.
func (s *Stats) ForcedBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.forced
}

// FailedForces returns how many force rounds ended in a device error.
func (s *Stats) FailedForces() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}
