package obs

import (
	"errors"
	"fmt"
	"sync"
)

// Checker is a Tracer that verifies thesis invariants over the event
// stream at runtime — the dynamic counterpart of the cmd/roslint
// static analyzers. It checks, per guardian:
//
//   - R1 (force barrier, the forcebarrier analyzer's contract): every
//     outcome acknowledged durable (KindOutcomeDurable) must be
//     covered by the traced durable boundary, i.e. a successful force
//     round (or the boundary recorded at log open) must already have
//     advanced past the entry's address. Sound under concurrency
//     because a force round's ForceDone is emitted before the round's
//     completion is broadcast to riders, so it always precedes any
//     OutcomeDurable it covers in the stream.
//   - R2 (lock discipline rule 4, the lockdiscipline analyzer's
//     contract): no force round starts, and no ForceTo caller waits,
//     while the emitting guardian holds a writer critical section.
//     The shadow store is exempt by construction — it emits no Crit
//     events, mirroring the analyzer's ForcePathPackages scope — and
//     the rule is meaningful under serial schedules (the sweep),
//     where one goroutine's crit bracket cannot interleave another's
//     force.
//   - R3 (recovery phase order): within one recovery session
//     (KindRecoveryStart), phases are nondecreasing in thesis order.
//   - R4 (quorum barrier, the replicated-log analogue of R1): once a
//     guardian is replicated — it has emitted any rep.quorum event —
//     every outcome acknowledged durable must be covered by a quorum
//     boundary some rep.quorum already reported. Sound under
//     concurrency because the quorum wait runs inside ForceTo (its
//     rep.quorum is emitted before the wait returns), and the
//     OutcomeDurable is emitted only after ForceTo returns. A log.open
//     clears the replicated bit: a promoted backup or recovered node
//     starts unreplicated until a replicator speaks again.
//
// A Checker may forward the stream to a next Tracer (e.g. a Recorder),
// so checking and recording compose in one pass.
type Checker struct {
	mu   sync.Mutex
	next Tracer
	seen uint64 // events observed, for violation messages

	state map[uint64]*gstate // per-guardian rule state
	viol  []string
}

// maxViolations caps the retained violation messages; the count keeps
// rising but a runaway scenario cannot hoard memory.
const maxViolations = 16

type gstate struct {
	boundary   uint64 // durable boundary from LogOpen / ForceDone
	haveBound  bool
	crit       int // writer critical-section depth
	inRecovery bool
	phase      Phase  // last recovery phase seen this session
	replicated bool   // a rep.quorum was seen since the last log.open
	repBound   uint64 // largest quorum-acked boundary reported
	violations int
}

// NewChecker returns a Checker forwarding to next (nil for none).
func NewChecker(next Tracer) *Checker {
	return &Checker{next: next, state: make(map[uint64]*gstate)}
}

func (c *Checker) g(gid uint64) *gstate {
	s, ok := c.state[gid]
	if !ok {
		s = &gstate{}
		c.state[gid] = s
	}
	return s
}

func (c *Checker) violate(s *gstate, format string, args ...any) {
	s.violations++
	if len(c.viol) < maxViolations {
		c.viol = append(c.viol, fmt.Sprintf(format, args...))
	}
}

// Emit implements Tracer.
func (c *Checker) Emit(e Event) {
	c.mu.Lock()
	c.seen++
	n := c.seen
	switch e.Kind {
	case KindLogOpen:
		s := c.g(e.Gid)
		s.boundary = e.Durable
		s.haveBound = true
		// The guardian restarts unreplicated: a reopened or promoted
		// log is quorum-gated only once a replicator speaks again.
		s.replicated = false
		s.repBound = 0
		// A reopened log means the process (re)started; any writer
		// critical section of a previous incarnation died with it — a
		// crashed holder must not pin R2 depth for the successor (seen
		// in merged chaos traces when a SIGKILL lands mid-crit).
		s.crit = 0

	case KindForceDone:
		if e.OK {
			s := c.g(e.Gid)
			s.boundary = e.Durable
			s.haveBound = true
		}

	case KindForceStart, KindForceWait:
		s := c.g(e.Gid)
		if s.crit > 0 {
			c.violate(s, "event %d: R2 lock discipline: %v for gid %d inside a writer critical section (depth %d)",
				n, e.Kind, e.Gid, s.crit)
		}

	case KindCritEnter:
		c.g(e.Gid).crit++

	case KindCritExit:
		s := c.g(e.Gid)
		s.crit--
		if s.crit < 0 {
			c.violate(s, "event %d: R2 lock discipline: crit.exit for gid %d without a matching crit.enter", n, e.Gid)
			s.crit = 0
		}

	case KindOutcomeDurable:
		s := c.g(e.Gid)
		switch {
		case !s.haveBound:
			c.violate(s, "event %d: R1 force barrier: %s outcome for %v (gid %d) acknowledged with no traced log boundary",
				n, OutcomeKind(e.Code), e.AID, e.Gid)
		case e.LSN >= s.boundary:
			c.violate(s, "event %d: R1 force barrier: %s outcome for %v (gid %d) acknowledged at lsn %d, durable boundary %d",
				n, OutcomeKind(e.Code), e.AID, e.Gid, e.LSN, s.boundary)
		}
		if s.replicated && e.LSN >= s.repBound {
			c.violate(s, "event %d: R4 quorum barrier: %s outcome for %v (gid %d) acknowledged at lsn %d, quorum boundary %d",
				n, OutcomeKind(e.Code), e.AID, e.Gid, e.LSN, s.repBound)
		}

	case KindRepQuorum:
		s := c.g(e.Gid)
		s.replicated = true
		if e.Durable > s.repBound {
			s.repBound = e.Durable
		}

	case KindRecoveryStart:
		s := c.g(e.Gid)
		s.inRecovery = true
		s.phase = 0

	case KindRecoveryPhase:
		s := c.g(e.Gid)
		p := Phase(e.Code)
		switch {
		case !s.inRecovery:
			c.violate(s, "event %d: R3 recovery order: phase %v for gid %d outside a recovery session", n, p, e.Gid)
		case p < s.phase:
			c.violate(s, "event %d: R3 recovery order: phase %v for gid %d after phase %v", n, p, e.Gid, s.phase)
		default:
			s.phase = p
			if p == PhaseResume {
				s.inRecovery = false
			}
		}
	}
	next := c.next
	c.mu.Unlock()
	if next != nil {
		next.Emit(e)
	}
}

// Violations returns the retained violation messages (at most
// maxViolations; the total is in Err's message if it overflowed).
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.viol))
	copy(out, c.viol)
	return out
}

// Err returns nil if no invariant was violated, or an error describing
// the first violations.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.viol) == 0 {
		return nil
	}
	total := 0
	//roslint:nondet order-independent: sums per-guardian counts
	for _, s := range c.state {
		total += s.violations
	}
	msg := fmt.Sprintf("obs: %d invariant violation(s); first: %s", total, c.viol[0])
	if len(c.viol) > 1 {
		msg += fmt.Sprintf(" (+%d more retained)", len(c.viol)-1)
	}
	return errors.New(msg)
}
