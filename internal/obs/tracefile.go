package obs

// Trace files: the on-disk form of an event stream, written by a rosd
// process (-tracefile) and read back by the chaos harness for
// multi-node merging. The format is built to be SIGKILL-friendly: a
// small header, then one CRC-framed record per event, fsynced on a
// periodic tick and on drain, so a killed process leaves a readable
// prefix and the reader treats a torn tail as end-of-stream rather
// than corruption — the same salvage stance stablelog takes toward
// its own torn tails.
//
// Layout:
//
//	header:  magic "ROSTRC01" · uvarint node-name length · name bytes
//	record:  uvarint payload length · payload · 4-byte CRC32(payload)
//	payload: Seq Kind Gid AID.{Coordinator,Seq} From To LSN Durable
//	         Bytes Code OK Note — uvarints, single bytes for
//	         Kind/Code/OK, zigzag varint for Bytes, length-prefixed
//	         Note.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"repro/internal/ids"
)

// traceMagic opens every trace file; the trailing digits version the
// record layout.
const traceMagic = "ROSTRC01"

// AppendEvent appends e's payload encoding (no framing) to dst.
func AppendEvent(dst []byte, e Event) []byte {
	dst = binary.AppendUvarint(dst, e.Seq)
	dst = append(dst, byte(e.Kind))
	dst = binary.AppendUvarint(dst, e.Gid)
	dst = binary.AppendUvarint(dst, uint64(e.AID.Coordinator))
	dst = binary.AppendUvarint(dst, e.AID.Seq)
	dst = binary.AppendUvarint(dst, e.From)
	dst = binary.AppendUvarint(dst, e.To)
	dst = binary.AppendUvarint(dst, e.LSN)
	dst = binary.AppendUvarint(dst, e.Durable)
	dst = binary.AppendVarint(dst, int64(e.Bytes))
	dst = append(dst, e.Code)
	if e.OK {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.Note)))
	dst = append(dst, e.Note...)
	return dst
}

// DecodeEvent parses one AppendEvent payload. It rejects truncated
// fields and trailing bytes.
func DecodeEvent(b []byte) (Event, error) {
	var e Event
	var err error
	u := func(name string) uint64 {
		if err != nil {
			return 0
		}
		v, n := binary.Uvarint(b)
		if n <= 0 || (n > 1 && b[n-1] == 0) {
			err = fmt.Errorf("trace event: %s: truncated or non-minimal uvarint", name)
			return 0
		}
		b = b[n:]
		return v
	}
	byteField := func(name string) byte {
		if err != nil {
			return 0
		}
		if len(b) == 0 {
			err = fmt.Errorf("trace event: %s: short buffer", name)
			return 0
		}
		v := b[0]
		b = b[1:]
		return v
	}
	e.Seq = u("Seq")
	e.Kind = Kind(byteField("Kind"))
	e.Gid = u("Gid")
	e.AID.Coordinator = ids.GuardianID(u("AID.Coordinator"))
	e.AID.Seq = u("AID.Seq")
	e.From = u("From")
	e.To = u("To")
	e.LSN = u("LSN")
	e.Durable = u("Durable")
	if err == nil {
		v, n := binary.Varint(b)
		if n <= 0 || (n > 1 && b[n-1] == 0) {
			err = fmt.Errorf("trace event: Bytes: truncated or non-minimal varint")
		} else {
			e.Bytes = int(v)
			b = b[n:]
		}
	}
	e.Code = byteField("Code")
	e.OK = byteField("OK") != 0
	noteLen := u("Note length")
	if err != nil {
		return Event{}, err
	}
	if noteLen > uint64(len(b)) {
		return Event{}, fmt.Errorf("trace event: Note length %d exceeds %d remaining bytes", noteLen, len(b))
	}
	e.Note = string(b[:noteLen])
	if rest := len(b) - int(noteLen); rest != 0 {
		return Event{}, fmt.Errorf("trace event: %d trailing bytes", rest)
	}
	return e, nil
}

// FileSink is a Tracer that appends CRC-framed event records to a
// file. Like Recorder it assigns the stream's sequence numbers. Writes
// are buffered; Flush pushes them through the OS page cache to the
// device, and the owner (rosd's tracefile tick, or Close on drain)
// decides the cadence — the sink itself never touches a clock, keeping
// the obs package inside the determinism analyzer's scope.
type FileSink struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	seq  uint64
	buf  []byte
	done bool
}

// NewFileSink creates (or truncates) path and writes the header naming
// node, the emitting process's identity for the merge step.
func NewFileSink(path, node string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &FileSink{f: f, w: bufio.NewWriter(f)}
	hdr := append([]byte(traceMagic), binary.AppendUvarint(nil, uint64(len(node)))...)
	hdr = append(hdr, node...)
	if _, err := s.w.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Emit implements Tracer.
func (s *FileSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.seq++
	e.Seq = s.seq
	s.buf = AppendEvent(s.buf[:0], e)
	var frame [binary.MaxVarintLen64]byte
	s.w.Write(frame[:binary.PutUvarint(frame[:], uint64(len(s.buf)))])
	s.w.Write(s.buf)
	binary.LittleEndian.PutUint32(frame[:4], crc32.ChecksumIEEE(s.buf))
	s.w.Write(frame[:4])
}

// Flush pushes buffered records to the file and fsyncs, bounding how
// much a SIGKILL can take with it.
func (s *FileSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes, fsyncs, and closes the file. Further Emits are
// dropped.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil
	}
	s.done = true
	ferr := s.w.Flush()
	if serr := s.f.Sync(); ferr == nil {
		ferr = serr
	}
	if cerr := s.f.Close(); ferr == nil {
		ferr = cerr
	}
	return ferr
}

// TraceFile is one process's recovered event stream.
type TraceFile struct {
	// Node is the emitting process's identity from the header.
	Node string
	// Events is the readable prefix, in emission order.
	Events []Event
	// Truncated reports that the file ended mid-record (the emitting
	// process was killed with records unflushed) — the prefix in
	// Events is still sound.
	Truncated bool
}

// ReadTraceFile parses a trace file, salvaging the longest clean
// prefix. A torn or CRC-failing tail sets Truncated instead of
// erroring; a bad header errors.
func ReadTraceFile(path string) (TraceFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return TraceFile{}, err
	}
	if len(b) < len(traceMagic) || string(b[:len(traceMagic)]) != traceMagic {
		return TraceFile{}, fmt.Errorf("trace file %s: bad magic", path)
	}
	b = b[len(traceMagic):]
	nameLen, n := binary.Uvarint(b)
	if n <= 0 || nameLen > uint64(len(b)-n) {
		return TraceFile{}, fmt.Errorf("trace file %s: bad header", path)
	}
	tf := TraceFile{Node: string(b[n : n+int(nameLen)])}
	b = b[n+int(nameLen):]
	for len(b) > 0 {
		plen, n := binary.Uvarint(b)
		if n <= 0 || plen > uint64(len(b)) || uint64(len(b)-n) < plen+4 {
			tf.Truncated = true
			return tf, nil
		}
		payload := b[n : n+int(plen)]
		sum := binary.LittleEndian.Uint32(b[n+int(plen):])
		if crc32.ChecksumIEEE(payload) != sum {
			tf.Truncated = true
			return tf, nil
		}
		e, err := DecodeEvent(payload)
		if err != nil {
			tf.Truncated = true
			return tf, nil
		}
		tf.Events = append(tf.Events, e)
		b = b[n+int(plen)+4:]
	}
	return tf, nil
}
