package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ids"
)

// sampleEvents exercises every payload field, including the NoLSN
// sentinel and a negative Bytes (the codec must not assume sign).
func sampleEvents() []Event {
	return []Event{
		{Kind: KindLogOpen, Gid: 7, Durable: 4096},
		{Kind: KindOutcomeAppend, Gid: 7, AID: ids.ActionID{Coordinator: 3, Seq: 99}, LSN: 128, Code: uint8(OutcomeCommitted)},
		{Kind: KindForceDone, Gid: 7, LSN: NoLSN, Durable: 8192, Bytes: 4096, OK: true},
		{Kind: KindRepSend, From: 1, To: 2, Durable: 0, Bytes: 512},
		{Kind: KindNetCall, From: 1, To: 2, OK: false, Note: "refused (partition)"},
		{Kind: KindRPCReply, Gid: 1, From: 42, Code: RPCOK, OK: true, Bytes: -1},
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	for i, e := range sampleEvents() {
		e.Seq = uint64(i) + 1
		b := AppendEvent(nil, e)
		got, err := DecodeEvent(b)
		if err != nil {
			t.Fatalf("event %d: DecodeEvent: %v", i, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("event %d: round trip\n got %+v\nwant %+v", i, got, e)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := DecodeEvent(b[:cut]); err == nil {
				t.Fatalf("event %d: truncation at %d accepted", i, cut)
			}
		}
		if _, err := DecodeEvent(append(b, 0)); err == nil {
			t.Fatalf("event %d: trailing byte accepted", i)
		}
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.trace")
	s, err := NewFileSink(path, "n1")
	if err != nil {
		t.Fatalf("NewFileSink: %v", err)
	}
	want := sampleEvents()
	for _, e := range want {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s.Emit(Event{Kind: KindLogOpen}) // post-close emits are dropped, not a panic

	tf, err := ReadTraceFile(path)
	if err != nil {
		t.Fatalf("ReadTraceFile: %v", err)
	}
	if tf.Node != "n1" || tf.Truncated {
		t.Fatalf("header: node %q truncated %v", tf.Node, tf.Truncated)
	}
	if len(tf.Events) != len(want) {
		t.Fatalf("read %d events, wrote %d", len(tf.Events), len(want))
	}
	for i, e := range tf.Events {
		exp := want[i]
		exp.Seq = uint64(i) + 1 // the sink assigns Seq
		if !reflect.DeepEqual(e, exp) {
			t.Fatalf("event %d:\n got %+v\nwant %+v", i, e, exp)
		}
	}
}

// TestReadTraceTornTail: a file cut mid-record (the SIGKILL shape)
// salvages the clean prefix and reports Truncated.
func TestReadTraceTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.trace")
	s, err := NewFileSink(path, "n2")
	if err != nil {
		t.Fatalf("NewFileSink: %v", err)
	}
	for _, e := range sampleEvents() {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(whole) - 1; cut > len(traceMagic)+3; cut -= 3 {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tf, err := ReadTraceFile(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Salvage property: whatever survives is an exact prefix of
		// what was written.
		if len(tf.Events) > len(sampleEvents()) {
			t.Fatalf("cut %d: %d events from a shorter file", cut, len(tf.Events))
		}
		for i, e := range tf.Events {
			exp := sampleEvents()[i]
			exp.Seq = uint64(i) + 1
			if !reflect.DeepEqual(e, exp) {
				t.Fatalf("cut %d event %d:\n got %+v\nwant %+v", cut, i, e, exp)
			}
		}
	}
	// A corrupted byte inside a record fails its CRC: prefix salvage.
	bad := append([]byte(nil), whole...)
	bad[len(bad)-6] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTraceFile(path)
	if err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if !tf.Truncated || len(tf.Events) != len(sampleEvents())-1 {
		t.Fatalf("corrupt tail: truncated=%v events=%d", tf.Truncated, len(tf.Events))
	}
	// A bad header is an error, not a salvage.
	if err := os.WriteFile(path, []byte("NOTATRACE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceFile(path); err == nil {
		t.Fatalf("bad magic accepted")
	}
}

// FuzzDecodeEvent: arbitrary payload bytes never panic, and anything
// accepted re-encodes to the exact input.
func FuzzDecodeEvent(f *testing.F) {
	for _, e := range sampleEvents() {
		f.Add(AppendEvent(nil, e))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := DecodeEvent(b)
		if err != nil {
			return
		}
		round := AppendEvent(nil, e)
		if string(round) != string(b) {
			t.Fatalf("accepted non-canonical payload %x (re-encodes %x)", b, round)
		}
	})
}
