// Package scenario holds small canonical storage-stack histories used
// to pin down the event stream: each scenario drives one guardian
// through a fixed serial schedule with synchronous forces, so the trace
// it emits is byte-for-byte reproducible. The golden-trace tests
// compare these traces against checked-in files, and cmd/rostrace
// prints them for inspection.
//
// Determinism contract: scenarios run single-threaded, pin synchronous
// forces, and derive nothing from clocks or map order, so every event —
// and therefore every sequence number the recorder assigns — is a pure
// function of the scenario definition.
package scenario

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/guardian"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/replog"
	"repro/internal/twopc"
	"repro/internal/value"
)

// A Scenario is a named deterministic history emitting to a tracer.
type Scenario struct {
	Name string
	Run  func(tr obs.Tracer) error
}

// All lists the canonical scenarios in a fixed order.
var All = []Scenario{
	{Name: "commit", Run: Commit},
	{Name: "abort", Run: Abort},
	{Name: "crash-recover", Run: CrashRecover},
	{Name: "housekeep", Run: Housekeep},
	{Name: "replicate", Run: Replicate},
}

// setup creates a hybrid-backend guardian with one counter committed to
// stable storage and the tracer installed from the start.
func setup(tr obs.Tracer) (*guardian.Guardian, error) {
	g, err := guardian.New(1, guardian.WithBackend(core.BackendHybrid), guardian.WithTracer(tr))
	if err != nil {
		return nil, err
	}
	g.SetSynchronousForces(true)
	init := g.Begin()
	c, err := init.NewAtomic(value.Int(0))
	if err != nil {
		return nil, err
	}
	if err := init.SetVar("c", c); err != nil {
		return nil, err
	}
	return g, init.Commit()
}

func bump(g *guardian.Guardian, delta int64) error {
	c, ok := g.VarAtomic("c")
	if !ok {
		return fmt.Errorf("scenario: counter lost")
	}
	a := g.Begin()
	if err := a.Update(c, func(v value.Value) value.Value {
		return value.Int(int64(v.(value.Int)) + delta)
	}); err != nil {
		return err
	}
	return a.Commit()
}

// Commit is the minimal commit history: setup plus one committed
// update.
func Commit(tr obs.Tracer) error {
	g, err := setup(tr)
	if err != nil {
		return err
	}
	return bump(g, 1)
}

// Abort is the minimal abort history: setup, then an update that
// aborts.
func Abort(tr obs.Tracer) error {
	g, err := setup(tr)
	if err != nil {
		return err
	}
	c, ok := g.VarAtomic("c")
	if !ok {
		return fmt.Errorf("scenario: counter lost")
	}
	a := g.Begin()
	if err := a.Update(c, func(v value.Value) value.Value {
		return value.Int(int64(v.(value.Int)) + 1)
	}); err != nil {
		return err
	}
	return a.Abort()
}

// CrashRecover crashes the guardian partway through a commit's device
// writes, restarts it, and resolves the in-doubt action, tracing the
// whole recovery-phase sequence.
func CrashRecover(tr obs.Tracer) error {
	g, err := setup(tr)
	if err != nil {
		return err
	}
	c, ok := g.VarAtomic("c")
	if !ok {
		return fmt.Errorf("scenario: counter lost")
	}
	a := g.Begin()
	if err := a.Update(c, func(v value.Value) value.Value {
		return value.Int(int64(v.(value.Int)) + 1)
	}); err != nil {
		return err
	}
	// The commit is interrupted by a device crash after three more
	// writes; whether the action survives is recovery's call, and the
	// trace records it either way.
	g.Volume().ArmCrashAfterWrites(3)
	if err := a.Commit(); err == nil {
		return fmt.Errorf("scenario: commit survived the armed crash")
	}
	g.Crash()
	ng, err := guardian.Restart(g)
	if err != nil {
		return err
	}
	ng.SetSynchronousForces(true)
	for _, aid := range ng.InDoubt() {
		if ng.OutcomeOf(aid) == twopc.OutcomeCommitted {
			err = ng.HandleCommit(aid)
		} else {
			err = ng.HandleAbort(aid)
		}
		if err != nil {
			return err
		}
	}
	for _, aid := range ng.Unfinished() {
		if err := ng.Done(aid); err != nil {
			return err
		}
	}
	return nil
}

// Housekeep commits a few updates, compacts the log, commits more, and
// snapshots, tracing the housekeeping runs and the generation switches.
func Housekeep(tr obs.Tracer) error {
	g, err := setup(tr)
	if err != nil {
		return err
	}
	for i := int64(1); i <= 3; i++ {
		if err := bump(g, i); err != nil {
			return err
		}
	}
	if _, err := g.Housekeep(core.HousekeepCompact); err != nil {
		return err
	}
	for i := int64(4); i <= 5; i++ {
		if err := bump(g, i); err != nil {
			return err
		}
	}
	if _, err := g.Housekeep(core.HousekeepSnapshot); err != nil {
		return err
	}
	return bump(g, 6)
}

// Replicate runs the canonical replication history: a primary shipping
// its log to two backups over the simulated network, a commit under
// full membership, one under a partition (the quorum completes on the
// survivor), one after the heal (backlog catch-up), then a backup
// takeover whose bumped epoch fences the deposed primary's next
// commit. The trace pins the whole rep.* vocabulary: send, recv, ack,
// quorum, catchup, promote, and the fenced round that makes no quorum
// claim.
func Replicate(tr obs.Tracer) error {
	net := netsim.New()
	net.SetTracer(tr)
	var backups []*replog.Backup
	var reps []replog.Replica
	for _, id := range []ids.GuardianID{101, 102} {
		b, err := replog.NewBackup(replog.BackupConfig{
			ID: id, Primary: 1, Backend: core.BackendHybrid, Tracer: tr,
		})
		if err != nil {
			return err
		}
		backups = append(backups, b)
		reps = append(reps, b)
	}
	g, err := guardian.New(1, guardian.WithBackend(core.BackendHybrid), guardian.WithTracer(tr))
	if err != nil {
		return err
	}
	g.SetSynchronousForces(true)
	p, err := replog.NewPrimary(replog.Config{
		Self: 1, Site: g.Site(), Quorum: 2, Net: net, Replicas: reps, Tracer: tr,
	})
	if err != nil {
		return err
	}
	g.SetReplicator(p)
	init := g.Begin()
	c, err := init.NewAtomic(value.Int(0))
	if err != nil {
		return err
	}
	if err := init.SetVar("c", c); err != nil {
		return err
	}
	if err := init.Commit(); err != nil {
		return err
	}
	if err := bump(g, 1); err != nil {
		return err
	}
	net.SetDown(101, true)
	if err := bump(g, 2); err != nil {
		return err
	}
	net.SetDown(101, false)
	if err := bump(g, 3); err != nil {
		return err
	}
	ng, err := backups[1].Promote()
	if err != nil {
		return err
	}
	nc, ok := ng.VarAtomic("c")
	if !ok {
		return fmt.Errorf("scenario: counter lost in takeover")
	}
	if got := int64(nc.Base().(value.Int)); got != 6 {
		return fmt.Errorf("scenario: takeover recovered c=%d, want 6", got)
	}
	if err := bump(g, 4); !errors.Is(err, replog.ErrStaleReplica) {
		return fmt.Errorf("scenario: deposed commit err = %v, want ErrStaleReplica", err)
	}
	return nil
}
