package scenario

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// TestGolden replays each canonical scenario and compares its trace
// byte-for-byte against testdata/<name>.golden. Regenerate with
//
//	go test ./internal/obs/scenario -run Golden -update
func TestGolden(t *testing.T) {
	for _, sc := range All {
		t.Run(sc.Name, func(t *testing.T) {
			var rec obs.Recorder
			if err := sc.Run(&rec); err != nil {
				t.Fatalf("scenario %s: %v", sc.Name, err)
			}
			got := rec.Text()
			path := filepath.Join("testdata", sc.Name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("trace diverged from %s:\n%s", path, diffLines(want, got))
			}
		})
	}
}

// TestTraceDeterministic runs every scenario twice and requires the two
// traces to be identical — the determinism contract the golden files
// rest on.
func TestTraceDeterministic(t *testing.T) {
	for _, sc := range All {
		t.Run(sc.Name, func(t *testing.T) {
			var a, b obs.Recorder
			if err := sc.Run(&a); err != nil {
				t.Fatal(err)
			}
			if err := sc.Run(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Text(), b.Text()) {
				t.Errorf("two runs diverged:\n%s", diffLines(a.Text(), b.Text()))
			}
		})
	}
}

// TestCheckerClean runs every scenario under the runtime invariant
// checker: the canonical histories must produce zero violations.
func TestCheckerClean(t *testing.T) {
	for _, sc := range All {
		t.Run(sc.Name, func(t *testing.T) {
			chk := obs.NewChecker(nil)
			if err := sc.Run(chk); err != nil {
				t.Fatal(err)
			}
			if err := chk.Err(); err != nil {
				t.Errorf("checker: %v\n%s", err, joinViolations(chk))
			}
		})
	}
}

func joinViolations(chk *obs.Checker) string {
	var buf bytes.Buffer
	for _, v := range chk.Violations() {
		fmt.Fprintf(&buf, "  %s\n", v)
	}
	return buf.String()
}

// diffLines shows the first divergence between two traces with a little
// context, which beats dumping both traces whole.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: want %d lines, got %d", len(w), len(g))
}
