package obs

// Multi-node trace merging. Each chaos-testnet process leaves its own
// trace file; the Checker's rules are stated over one stream per
// guardian, so before checking, the harness merges the per-process
// streams into a single causally-plausible order. The merge is a
// greedy topological sort honoring, in priority order:
//
//  1. Per-stream order: a process's own events never reorder.
//  2. Guardian continuity: a guardian id that appears in several
//     streams (a SIGKILLed primary whose gid a promoted backup
//     adopts, a restarted node's successor process) emits its events
//     in stream order — callers pass streams in process-start order,
//     and a later process only owns a gid after the earlier owner
//     died, so all of the earlier stream's events for that gid
//     happened first. This is what keeps R1/R4 state sound across a
//     takeover: the promoted log.open must not reset the boundary
//     before the dead primary's remaining outcome events are scored.
//  3. Replication edges: a backup's rep.recv for boundary d follows a
//     rep.send whose run ends at d; a primary's rep.ack at boundary d
//     follows some rep.recv reaching d on the acked replica.
//  4. 2PC edges: a participant's committed outcome append for action A
//     follows the coordinator guardian's committing append for A.
//
// Edges 3 and 4 are best-effort: they only constrain when the matching
// cause exists somewhere in the input (a truncated trace may have lost
// it — the effect is then released, because the cause certainly
// happened before the truncation took the record). If the constraints
// ever wedge — possible only with inconsistent inputs — the merge
// releases the lowest-indexed blocked stream and records a warning
// rather than dropping events.

import "fmt"

// NodeTrace is one process's stream, as read by ReadTraceFile. Pass
// streams to MergeTraces in process-start order.
type NodeTrace struct {
	// Node names the emitting process (trace-file header).
	Node string
	// Events is the stream in emission order.
	Events []Event
}

// MergeTraces merges per-process streams into one stream, re-assigning
// Seq. Warnings report constraint releases (inconsistent or truncated
// inputs); a clean merge returns none.
func MergeTraces(streams []NodeTrace) ([]Event, []string) {
	total := 0
	for _, s := range streams {
		total += len(s.Events)
	}
	m := &merger{
		streams:       streams,
		frontier:      make([]int, len(streams)),
		gidTotal:      make([]map[uint64]int, len(streams)),
		gidEmitted:    make([]map[uint64]int, len(streams)),
		sendTotal:     map[uint64]int{},
		sendEmitted:   map[uint64]int{},
		recvEmitted:   map[uint64]int{},
		recvMax:       map[uint64]uint64{},
		recvMaxTotal:  map[uint64]uint64{},
		committing:    map[string]bool{},
		committingAll: map[string]bool{},
	}
	for i, s := range streams {
		m.gidTotal[i] = map[uint64]int{}
		m.gidEmitted[i] = map[uint64]int{}
		for _, e := range s.Events {
			m.gidTotal[i][e.Gid]++
			switch e.Kind {
			case KindRepSend:
				m.sendTotal[e.Durable+uint64(e.Bytes)]++
			case KindRepRecv:
				if e.Durable > m.recvMaxTotal[e.Gid] {
					m.recvMaxTotal[e.Gid] = e.Durable
				}
			case KindOutcomeAppend:
				if OutcomeKind(e.Code) == OutcomeCommitting {
					m.committingAll[e.AID.String()] = true
				}
			}
		}
	}
	merged := make([]Event, 0, total)
	for len(merged) < total {
		picked := -1
		for i := range streams {
			if m.frontier[i] < len(streams[i].Events) && m.ready(i) {
				picked = i
				break
			}
		}
		if picked < 0 {
			// Wedged: inconsistent inputs. Release the lowest-indexed
			// blocked stream so every event still lands in the output.
			for i := range streams {
				if m.frontier[i] < len(streams[i].Events) {
					picked = i
					break
				}
			}
			e := streams[picked].Events[m.frontier[picked]]
			m.warnings = append(m.warnings, fmt.Sprintf(
				"merge: released blocked %v (stream %d %q, seq %d): cause not yet emitted",
				e.Kind, picked, streams[picked].Node, e.Seq))
		}
		merged = append(merged, m.emit(picked))
	}
	for i := range merged {
		merged[i].Seq = uint64(i) + 1
	}
	return merged, m.warnings
}

type merger struct {
	streams  []NodeTrace
	frontier []int

	// gidTotal/gidEmitted count events per (stream, gid) for the
	// guardian-continuity rule.
	gidTotal, gidEmitted []map[uint64]int
	// sendTotal/sendEmitted count rep.send runs by end boundary;
	// recvEmitted counts rep.recv by boundary.
	sendTotal, sendEmitted, recvEmitted map[uint64]int
	// recvMax/recvMaxTotal track the highest emitted / existing
	// rep.recv boundary per replica gid, for the ack edge.
	recvMax, recvMaxTotal map[uint64]uint64
	// committing/committingAll track committing outcome appends by
	// action id (emitted / anywhere in the input).
	committing, committingAll map[string]bool

	warnings []string
}

// ready reports whether stream i's frontier event may be emitted now.
func (m *merger) ready(i int) bool {
	e := m.streams[i].Events[m.frontier[i]]
	// Guardian continuity: earlier-started streams flush this gid
	// first. Gid 0 is not a guardian (unstamped events) — exempt.
	if e.Gid != 0 {
		for j := 0; j < i; j++ {
			if m.gidEmitted[j][e.Gid] < m.gidTotal[j][e.Gid] {
				return false
			}
		}
	}
	switch e.Kind {
	case KindRepRecv:
		// Needs an unconsumed send ending at this boundary, when one
		// exists at all.
		if m.sendTotal[e.Durable] > m.recvEmitted[e.Durable] &&
			m.sendEmitted[e.Durable] <= m.recvEmitted[e.Durable] {
			return false
		}
	case KindRepAck:
		// Needs the acked replica to have received this far, when its
		// recv record survived.
		if m.recvMaxTotal[e.To] >= e.Durable && m.recvMax[e.To] < e.Durable {
			return false
		}
	case KindOutcomeAppend:
		// A participant's committed append follows the coordinator's
		// committing append, when the latter was traced.
		if OutcomeKind(e.Code) == OutcomeCommitted &&
			uint64(e.AID.Coordinator) != e.Gid &&
			m.committingAll[e.AID.String()] && !m.committing[e.AID.String()] {
			return false
		}
	}
	return true
}

// emit consumes stream i's frontier event and updates the cause state.
func (m *merger) emit(i int) Event {
	e := m.streams[i].Events[m.frontier[i]]
	m.frontier[i]++
	m.gidEmitted[i][e.Gid]++
	switch e.Kind {
	case KindRepSend:
		m.sendEmitted[e.Durable+uint64(e.Bytes)]++
	case KindRepRecv:
		m.recvEmitted[e.Durable]++
		if e.Durable > m.recvMax[e.Gid] {
			m.recvMax[e.Gid] = e.Durable
		}
	case KindOutcomeAppend:
		if OutcomeKind(e.Code) == OutcomeCommitting {
			m.committing[e.AID.String()] = true
		}
	}
	return e
}
