package obs

import (
	"strings"
	"testing"

	"repro/internal/ids"
)

func TestEventText(t *testing.T) {
	aid := ids.ActionID{Coordinator: 3, Seq: 9}
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Seq: 1, Kind: KindLogOpen, Gid: 2, Durable: 512},
			"   1 log.open gid=2 durable=512"},
		{Event{Seq: 2, Kind: KindLogAppend, Gid: 2, LSN: 512, Bytes: 37},
			"   2 log.append gid=2 lsn=512 bytes=37"},
		{Event{Seq: 3, Kind: KindForceDone, Gid: 2, LSN: 512, Durable: 549, Bytes: 37, OK: true},
			"   3 force.done gid=2 lsn=512 durable=549 bytes=37"},
		{Event{Seq: 4, Kind: KindForceDone, Gid: 2, LSN: 512, Durable: 512, Bytes: 37, Note: "device down"},
			"   4 force.done gid=2 lsn=512 durable=512 bytes=37 !err (device down)"},
		{Event{Seq: 5, Kind: KindOutcomeDurable, Gid: 2, AID: aid, LSN: 512, Code: uint8(OutcomeCommitted)},
			"   5 outcome.durable gid=2 aid=" + aid.String() + " lsn=512 committed"},
		{Event{Seq: 6, Kind: KindRecoveryPhase, Gid: 2, Code: uint8(PhaseScan)},
			"   6 recovery.phase gid=2 scan"},
		{Event{Seq: 7, Kind: KindTwoPCVote, AID: aid, From: 4, To: 3, Code: VoteReadOnly, OK: true},
			"   7 twopc.vote aid=" + aid.String() + " from=4 to=3 read-only"},
		{Event{Seq: 8, Kind: KindNetCall, From: 3, To: 4},
			"   8 net.call from=3 to=4 !err"},
		{Event{Seq: 9, Kind: KindForceStart, Gid: 1, LSN: NoLSN, Durable: 0},
			"   9 force.start gid=1 lsn=nil durable=0"},
		{Event{Seq: 10, Kind: KindHousekeepDone, Gid: 1, Bytes: 2048, Code: HousekeepSnapshot, OK: true},
			"  10 housekeep.done gid=1 bytes=2048 snapshot"},
		{Event{Seq: 11, Kind: KindFaultInjected, LSN: 7, Code: FaultTorn},
			"  11 fault.injected lsn=7 torn"},
		// CritEnter never sets OK; no !err marker may appear.
		{Event{Seq: 12, Kind: KindCritEnter, Gid: 1},
			"  12 crit.enter gid=1"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("event text:\n  got:  %q\n  want: %q", got, c.want)
		}
	}
}

func TestKindAndCodeNames(t *testing.T) {
	for k := KindLogOpen; k < kindMax; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", uint8(k))
		}
	}
	if Kind(0).String() != "kind(0)" || Kind(250).String() != "kind(250)" {
		t.Error("out-of-range kinds must render numerically")
	}
	for p := PhaseRepair; p <= PhaseResume; p++ {
		if strings.HasPrefix(p.String(), "phase(") {
			t.Errorf("phase %d has no name", uint8(p))
		}
	}
	for o := OutcomePrepared; o <= OutcomeDone; o++ {
		if strings.HasPrefix(o.String(), "outcome(") {
			t.Errorf("outcome kind %d has no name", uint8(o))
		}
	}
}

func TestRecorder(t *testing.T) {
	var rec Recorder
	rec.Emit(Event{Kind: KindLogAppend, LSN: 0, Bytes: 13})
	rec.Emit(Event{Kind: KindForceDone, Durable: 13, OK: true})
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	events := rec.Events()
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("sequence numbers = %d, %d, want 1, 2", events[0].Seq, events[1].Seq)
	}
	text := string(rec.Text())
	if !strings.HasSuffix(text, "\n") {
		t.Error("Text is not newline-terminated")
	}
	if n := strings.Count(text, "\n"); n != 2 {
		t.Errorf("Text has %d lines, want 2", n)
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Error("Reset did not clear the recorder")
	}
	rec.Emit(Event{Kind: KindLogOpen})
	if rec.Events()[0].Seq != 1 {
		t.Error("Reset did not restart sequence numbering")
	}
}

func TestStats(t *testing.T) {
	var st Stats
	st.Emit(Event{Kind: KindLogAppend, Bytes: 40})
	st.Emit(Event{Kind: KindLogAppend, Bytes: 60})
	st.Emit(Event{Kind: KindForceDone, Bytes: 100, OK: true})
	st.Emit(Event{Kind: KindForceDone, Bytes: 25, Note: "device down"}) // failed round
	st.Emit(Event{Kind: KindNetCall, OK: true})

	if got := st.Count(KindLogAppend); got != 2 {
		t.Errorf("Count(log.append) = %d, want 2", got)
	}
	if got := st.Count(KindForceDone); got != 1 {
		t.Errorf("Count(force.done) = %d, want 1 (failed rounds excluded, matching Log.Forces)", got)
	}
	if got := st.FailedForces(); got != 1 {
		t.Errorf("FailedForces = %d, want 1", got)
	}
	if got := st.AppendedBytes(); got != 100 {
		t.Errorf("AppendedBytes = %d, want 100", got)
	}
	if got := st.ForcedBytes(); got != 100 {
		t.Errorf("ForcedBytes = %d, want 100 (failed round's bytes excluded)", got)
	}
	if got := st.Count(kindMax + 1); got != 0 {
		t.Errorf("Count(out of range) = %d, want 0", got)
	}
}

func TestWithGuardian(t *testing.T) {
	if WithGuardian(nil, 7) != nil {
		t.Fatal("WithGuardian(nil) must stay nil to preserve the fast path")
	}
	var rec Recorder
	tr := WithGuardian(&rec, 7)
	tr.Emit(Event{Kind: KindLogAppend})
	tr.Emit(Event{Kind: KindFaultInjected, Gid: 3}) // pre-stamped gid wins
	events := rec.Events()
	if events[0].Gid != 7 {
		t.Errorf("unstamped event gid = %d, want 7", events[0].Gid)
	}
	if events[1].Gid != 3 {
		t.Errorf("pre-stamped event gid = %d, want 3 (WithGuardian must not overwrite)", events[1].Gid)
	}
}

// checkerOn feeds a synthetic stream to a fresh Checker and returns it.
func checkerOn(events ...Event) *Checker {
	c := NewChecker(nil)
	for _, e := range events {
		c.Emit(e)
	}
	return c
}

func TestCheckerCleanStream(t *testing.T) {
	c := checkerOn(
		Event{Kind: KindLogOpen, Gid: 1, Durable: 0},
		Event{Kind: KindCritEnter, Gid: 1},
		Event{Kind: KindLogAppend, Gid: 1, LSN: 0, Bytes: 50},
		Event{Kind: KindOutcomeAppend, Gid: 1, LSN: 0, Code: uint8(OutcomeCommitted)},
		Event{Kind: KindCritExit, Gid: 1},
		Event{Kind: KindForceStart, Gid: 1, LSN: 0, Durable: 0, Bytes: 50},
		Event{Kind: KindForceDone, Gid: 1, LSN: 0, Durable: 50, Bytes: 50, OK: true},
		Event{Kind: KindOutcomeDurable, Gid: 1, LSN: 0, Code: uint8(OutcomeCommitted)},
		Event{Kind: KindRecoveryStart, Gid: 1},
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseRepair)},
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseScan)},
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseScan)}, // repeats allowed
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseResume)},
	)
	if err := c.Err(); err != nil {
		t.Fatalf("clean stream flagged: %v", err)
	}
}

func TestCheckerR1ForceBarrier(t *testing.T) {
	// Acknowledged with no boundary ever traced.
	c := checkerOn(Event{Kind: KindOutcomeDurable, Gid: 1, LSN: 0, Code: uint8(OutcomeCommitted)})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R1") {
		t.Fatalf("no-boundary ack not flagged as R1: %v", err)
	}

	// Acknowledged past the boundary.
	c = checkerOn(
		Event{Kind: KindLogOpen, Gid: 1, Durable: 100},
		Event{Kind: KindOutcomeDurable, Gid: 1, LSN: 100, Code: uint8(OutcomeCommitted)},
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R1") {
		t.Fatalf("past-boundary ack not flagged as R1: %v", err)
	}

	// A failed force must not advance the boundary.
	c = checkerOn(
		Event{Kind: KindLogOpen, Gid: 1, Durable: 0},
		Event{Kind: KindForceDone, Gid: 1, LSN: 0, Durable: 50, Bytes: 50}, // OK false
		Event{Kind: KindOutcomeDurable, Gid: 1, LSN: 0, Code: uint8(OutcomeCommitted)},
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R1") {
		t.Fatalf("ack covered only by a failed force not flagged: %v", err)
	}

	// Boundaries are per guardian: guardian 2's force does not cover
	// guardian 1's outcome.
	c = checkerOn(
		Event{Kind: KindLogOpen, Gid: 1, Durable: 0},
		Event{Kind: KindForceDone, Gid: 2, LSN: 0, Durable: 500, Bytes: 500, OK: true},
		Event{Kind: KindOutcomeDurable, Gid: 1, LSN: 200, Code: uint8(OutcomeCommitted)},
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R1") {
		t.Fatalf("cross-guardian boundary leak not flagged: %v", err)
	}
}

func TestCheckerR2LockDiscipline(t *testing.T) {
	c := checkerOn(
		Event{Kind: KindCritEnter, Gid: 1},
		Event{Kind: KindForceStart, Gid: 1},
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R2") {
		t.Fatalf("force inside crit not flagged as R2: %v", err)
	}

	c = checkerOn(
		Event{Kind: KindCritEnter, Gid: 1},
		Event{Kind: KindForceWait, Gid: 1},
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R2") {
		t.Fatalf("force wait inside crit not flagged as R2: %v", err)
	}

	c = checkerOn(Event{Kind: KindCritExit, Gid: 1})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R2") {
		t.Fatalf("unmatched crit.exit not flagged as R2: %v", err)
	}

	// Balanced bracket, force outside: clean.
	c = checkerOn(
		Event{Kind: KindCritEnter, Gid: 1},
		Event{Kind: KindCritExit, Gid: 1},
		Event{Kind: KindForceStart, Gid: 1},
	)
	if err := c.Err(); err != nil {
		t.Fatalf("force outside crit flagged: %v", err)
	}

	// A crashed holder must not pin the depth: the crit.enter's process
	// was SIGKILLed mid-section, the successor incarnation reopens the
	// log (same gid, merged-trace continuity) and forces freely.
	c = checkerOn(
		Event{Kind: KindLogOpen, Gid: 1, Durable: 0},
		Event{Kind: KindCritEnter, Gid: 1},
		// ... process dies here; no crit.exit is ever emitted ...
		Event{Kind: KindLogOpen, Gid: 1, Durable: 0},
		Event{Kind: KindForceStart, Gid: 1},
	)
	if err := c.Err(); err != nil {
		t.Fatalf("post-restart force flagged by a dead incarnation's crit: %v", err)
	}
}

func TestCheckerR3RecoveryOrder(t *testing.T) {
	c := checkerOn(Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseScan)})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R3") {
		t.Fatalf("phase outside session not flagged as R3: %v", err)
	}

	c = checkerOn(
		Event{Kind: KindRecoveryStart, Gid: 1},
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseScan)},
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseRepair)},
	)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R3") {
		t.Fatalf("phase regression not flagged as R3: %v", err)
	}

	// A new session (an interrupted recovery retried) resets the order.
	c = checkerOn(
		Event{Kind: KindRecoveryStart, Gid: 1},
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseScan)},
		Event{Kind: KindRecoveryStart, Gid: 1},
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseRepair)},
		Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseResume)},
	)
	if err := c.Err(); err != nil {
		t.Fatalf("restarted session flagged: %v", err)
	}

	// After resume, a stray phase is outside any session again.
	c.Emit(Event{Kind: KindRecoveryPhase, Gid: 1, Code: uint8(PhaseResume)})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "R3") {
		t.Fatalf("phase after resume not flagged as R3: %v", err)
	}
}

func TestCheckerForwardsAndCaps(t *testing.T) {
	var rec Recorder
	c := NewChecker(&rec)
	for i := 0; i < maxViolations+10; i++ {
		c.Emit(Event{Kind: KindOutcomeDurable, Gid: 1, LSN: uint64(i)})
	}
	if rec.Len() != maxViolations+10 {
		t.Errorf("forwarded %d events, want %d", rec.Len(), maxViolations+10)
	}
	if got := len(c.Violations()); got != maxViolations {
		t.Errorf("retained %d violations, want cap %d", got, maxViolations)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "26 invariant violation(s)") {
		t.Errorf("Err must report the uncapped total: %v", err)
	}
}

// TestStatsEmitNoAlloc pins the allocation-light claim: aggregating an
// event into Stats allocates nothing.
func TestStatsEmitNoAlloc(t *testing.T) {
	var st Stats
	e := Event{Kind: KindLogAppend, Gid: 1, LSN: 64, Bytes: 48}
	if avg := testing.AllocsPerRun(200, func() { st.Emit(e) }); avg != 0 {
		t.Errorf("Stats.Emit allocates %.1f times per event, want 0", avg)
	}
}

func BenchmarkStatsEmit(b *testing.B) {
	var st Stats
	e := Event{Kind: KindLogAppend, Gid: 1, LSN: 64, Bytes: 48}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Emit(e)
	}
}
