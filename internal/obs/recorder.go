package obs

import (
	"bytes"
	"sync"
)

// Recorder is a Tracer that retains every event and assigns the
// logical sequence numbers. Under a deterministic schedule (the crash
// sweep's serial, synchronous-force schedule) the recorded stream —
// and therefore Text — is byte-for-byte reproducible, which is what
// the golden-trace tests and the sweep determinism check rely on.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer: it stamps the next sequence number on the
// event and retains it.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	e.Seq = uint64(len(r.events)) + 1
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded stream in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset discards the recorded events and restarts sequence numbering.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Text renders the stream as newline-terminated event lines — the
// golden-file format.
func (r *Recorder) Text() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b bytes.Buffer
	for _, e := range r.events {
		b.Write(e.appendText(nil))
		b.WriteByte('\n')
	}
	return b.Bytes()
}
