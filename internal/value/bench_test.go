package value

import (
	"fmt"
	"testing"

	"repro/internal/ids"
)

// benchValue builds a record of n fields with mixed leaves and one
// reference, resembling a typical flattened object version.
func benchValue(n int) Value {
	r := NewRecord()
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			r.Fields[fmt.Sprintf("i%d", i)] = Int(int64(i))
		case 1:
			r.Fields[fmt.Sprintf("s%d", i)] = Str("some string payload")
		case 2:
			r.Fields[fmt.Sprintf("l%d", i)] = NewList(Int(1), Int(2), Int(3))
		default:
			r.Fields[fmt.Sprintf("r%d", i)] = UIDRef{UID: ids.UID(i)}
		}
	}
	return r
}

func BenchmarkFlatten(b *testing.B) {
	for _, n := range []int{4, 64} {
		b.Run(fmt.Sprintf("fields=%d", n), func(b *testing.B) {
			v := benchValue(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Flatten(v, nil)
			}
		})
	}
}

func BenchmarkUnflatten(b *testing.B) {
	for _, n := range []int{4, 64} {
		b.Run(fmt.Sprintf("fields=%d", n), func(b *testing.B) {
			data := Flatten(benchValue(n), nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Unflatten(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCopy(b *testing.B) {
	v := benchValue(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Copy(v)
	}
}
