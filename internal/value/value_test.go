package value

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// fakeObj stands in for a recoverable object in value-layer tests.
type fakeObj struct{ uid ids.UID }

func (f fakeObj) UID() ids.UID { return f.uid }

func TestStringRendering(t *testing.T) {
	v := RecordOf(
		"name", Str("alice"),
		"balance", Int(100),
		"flags", NewList(Bool(true), Bytes{0xde, 0xad}),
		"acct", Ref{Target: fakeObj{7}},
	)
	got := String(v)
	want := `{acct: &O7, balance: 100, flags: [true, 0xdead], name: "alice"}`
	if got != want {
		t.Fatalf("String = %s, want %s", got, want)
	}
}

func TestStringCyclic(t *testing.T) {
	l := NewList(Int(1))
	l.Elems = append(l.Elems, l)
	got := String(l)
	if got != "[1, [...]]" {
		t.Fatalf("cyclic String = %s", got)
	}
}

func TestFlattenUnflattenLeaves(t *testing.T) {
	cases := []Value{
		Int(0), Int(-5), Int(1 << 40), Str(""), Str("héllo"),
		Bool(true), Bool(false), Bytes{}, Bytes{1, 2, 3},
	}
	for _, v := range cases {
		data := Flatten(v, nil)
		got, err := Unflatten(data)
		if err != nil {
			t.Fatalf("Unflatten(%s): %v", String(v), err)
		}
		if !Equal(v, got) {
			t.Fatalf("round trip of %s gave %s", String(v), String(got))
		}
	}
}

func TestFlattenReplacesRefsWithUIDs(t *testing.T) {
	// Figure 2-2: z = atomic record [x: int, y: atomic array]. Copying z
	// copies x but places a stable-storage reference (UID) for y.
	z := RecordOf("x", Int(3), "y", Ref{Target: fakeObj{9}})
	var visited []ids.UID
	data := Flatten(z, func(o Obj) { visited = append(visited, o.UID()) })
	if len(visited) != 1 || visited[0] != 9 {
		t.Fatalf("visit callbacks = %v, want [O9]", visited)
	}
	got, err := Unflatten(data)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got.(*Record)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if _, ok := r.Fields["y"].(UIDRef); !ok {
		t.Fatalf("y decoded as %T, want UIDRef", r.Fields["y"])
	}
	if !Equal(z, got) {
		t.Fatalf("Equal(z, round-trip) = false: %s vs %s", String(z), String(got))
	}
}

func TestFlattenVisitsEachObjectOnce(t *testing.T) {
	shared := Ref{Target: fakeObj{4}}
	v := NewList(shared, shared, RecordOf("again", shared))
	count := 0
	Flatten(v, func(Obj) { count++ })
	if count != 1 {
		t.Fatalf("visit count = %d, want 1", count)
	}
}

func TestFlattenFollowsRegularObjects(t *testing.T) {
	// Figure 3-3/3-4: O1's data references a mutex object (by uid), a
	// regular object that itself references an atomic object, and a
	// directly referenced atomic object. Flattening O1 must visit all
	// three recoverable objects and copy the regular object inline.
	regular := NewList(Str("regular"), Ref{Target: fakeObj{4}})
	o1data := NewList(Ref{Target: fakeObj{2}}, regular, Ref{Target: fakeObj{3}})
	var visited []ids.UID
	data := Flatten(o1data, func(o Obj) { visited = append(visited, o.UID()) })
	if len(visited) != 3 {
		t.Fatalf("visited %v, want 3 objects", visited)
	}
	got, err := Unflatten(data)
	if err != nil {
		t.Fatal(err)
	}
	want := NewList(UIDRef{2}, NewList(Str("regular"), UIDRef{4}), UIDRef{3})
	if !Equal(got, want) {
		t.Fatalf("flattened O1 = %s, want %s", String(got), String(want))
	}
}

func TestSharingPreservedWithinOneFlatten(t *testing.T) {
	shared := NewList(Int(1), Int(2))
	v := NewList(shared, shared)
	got, err := Unflatten(Flatten(v, nil))
	if err != nil {
		t.Fatal(err)
	}
	l := got.(*List)
	if l.Elems[0] != l.Elems[1] {
		t.Fatal("sharing of regular object lost across flatten/unflatten")
	}
}

func TestCyclicRegularStructure(t *testing.T) {
	l := NewList(Int(7))
	l.Elems = append(l.Elems, l) // cycle through regular structure
	got, err := Unflatten(Flatten(l, nil))
	if err != nil {
		t.Fatal(err)
	}
	gl := got.(*List)
	if len(gl.Elems) != 2 {
		t.Fatalf("len = %d", len(gl.Elems))
	}
	if gl.Elems[1] != Value(gl) {
		t.Fatal("cycle not reconstructed")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	mk := func() Value {
		return RecordOf("b", Int(2), "a", Int(1), "c", NewList(Str("x")))
	}
	d1 := Flatten(mk(), nil)
	d2 := Flatten(mk(), nil)
	if !bytes.Equal(d1, d2) {
		t.Fatal("encoding not deterministic")
	}
}

func TestCopySemantics(t *testing.T) {
	inner := NewList(Int(1))
	ref := Ref{Target: fakeObj{5}}
	orig := RecordOf("l", inner, "r", ref)
	cp := Copy(orig).(*Record)
	// Mutating the copy's regular structure must not affect the original.
	cp.Fields["l"].(*List).Elems[0] = Int(99)
	if inner.Elems[0] != Int(1) {
		t.Fatal("Copy shares regular structure")
	}
	// References to recoverable objects are shared.
	if cp.Fields["r"].(Ref).Target != ref.Target {
		t.Fatal("Copy did not share recoverable reference")
	}
}

func TestCopyPreservesSharingAndCycles(t *testing.T) {
	shared := NewList(Int(1))
	v := NewList(shared, shared)
	cp := Copy(v).(*List)
	if cp.Elems[0] != cp.Elems[1] {
		t.Fatal("copy broke sharing")
	}
	cyc := NewList()
	cyc.Elems = append(cyc.Elems, cyc)
	ccp := Copy(cyc).(*List)
	if ccp.Elems[0] != Value(ccp) {
		t.Fatal("copy broke cycle")
	}
}

func TestResolveRefs(t *testing.T) {
	v := NewList(UIDRef{3}, RecordOf("x", UIDRef{4}))
	objs := map[ids.UID]Obj{3: fakeObj{3}, 4: fakeObj{4}}
	got, err := ResolveRefs(v, func(u ids.UID) (Obj, bool) {
		o, ok := objs[u]
		return o, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	l := got.(*List)
	if r, ok := l.Elems[0].(Ref); !ok || r.Target.UID() != 3 {
		t.Fatalf("elem 0 = %s", String(l.Elems[0]))
	}
	inner := l.Elems[1].(*Record)
	if r, ok := inner.Fields["x"].(Ref); !ok || r.Target.UID() != 4 {
		t.Fatalf("x = %s", String(inner.Fields["x"]))
	}
}

func TestResolveRefsMissing(t *testing.T) {
	v := NewList(UIDRef{42})
	_, err := ResolveRefs(v, func(ids.UID) (Obj, bool) { return nil, false })
	if err == nil {
		t.Fatal("unresolvable reference not reported")
	}
}

func TestEqualMixedRefKinds(t *testing.T) {
	a := NewList(Ref{Target: fakeObj{8}})
	b := NewList(UIDRef{8})
	if !Equal(a, b) {
		t.Fatal("Ref{O8} != UIDRef{O8}")
	}
	c := NewList(UIDRef{9})
	if Equal(a, c) {
		t.Fatal("refs to different UIDs compared equal")
	}
}

func TestEqualNegativeCases(t *testing.T) {
	cases := [][2]Value{
		{Int(1), Int(2)},
		{Int(1), Str("1")},
		{Str("a"), Str("b")},
		{Bool(true), Bool(false)},
		{Bytes{1}, Bytes{1, 2}},
		{NewList(Int(1)), NewList(Int(2))},
		{NewList(Int(1)), NewList(Int(1), Int(1))},
		{RecordOf("a", Int(1)), RecordOf("b", Int(1))},
		{RecordOf("a", Int(1)), RecordOf("a", Int(2))},
		{NewList(), RecordOf()},
	}
	for _, c := range cases {
		if Equal(c[0], c[1]) {
			t.Errorf("Equal(%s, %s) = true", String(c[0]), String(c[1]))
		}
	}
}

func TestUnflattenCorrupt(t *testing.T) {
	good := Flatten(NewList(Int(1), Str("hi"), UIDRef{3}), nil)
	// Truncations.
	for i := 0; i < len(good); i++ {
		if _, err := Unflatten(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage.
	if _, err := Unflatten(append(append([]byte{}, good...), 0x00)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Unknown tag.
	if _, err := Unflatten([]byte{0xFF}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	// Dangling back-reference.
	if _, err := Unflatten([]byte{tagBackRef, 0}); err == nil {
		t.Fatal("dangling back-reference accepted")
	}
}

// arbValue builds a pseudo-random value from quick-generated fuel.
func arbValue(fuel []byte, depth int) Value {
	if len(fuel) == 0 || depth > 4 {
		return Int(int64(depth))
	}
	switch fuel[0] % 7 {
	case 0:
		return Int(int64(int8(fuel[0])))
	case 1:
		n := int(fuel[0]) % 8
		if n > len(fuel) {
			n = len(fuel)
		}
		return Str(fuel[:n])
	case 2:
		return Bool(fuel[0]%2 == 0)
	case 3:
		n := int(fuel[0]) % 8
		if n > len(fuel) {
			n = len(fuel)
		}
		return Bytes(fuel[:n])
	case 4:
		l := NewList()
		rest := fuel[1:]
		for i := 0; i < int(fuel[0]%4); i++ {
			l.Elems = append(l.Elems, arbValue(rest, depth+1))
			if len(rest) > 3 {
				rest = rest[3:]
			}
		}
		return l
	case 5:
		r := NewRecord()
		rest := fuel[1:]
		names := []string{"a", "bb", "ccc", "dddd"}
		for i := 0; i < int(fuel[0]%4); i++ {
			r.Fields[names[i%len(names)]] = arbValue(rest, depth+1)
			if len(rest) > 3 {
				rest = rest[3:]
			}
		}
		return r
	default:
		return UIDRef{ids.UID(fuel[0])}
	}
}

// Property: Unflatten(Flatten(v)) is structurally equal to v for
// arbitrary values.
func TestFlattenRoundTripProperty(t *testing.T) {
	f := func(fuel []byte) bool {
		v := arbValue(fuel, 0)
		got, err := Unflatten(Flatten(v, nil))
		return err == nil && Equal(v, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Copy is structurally equal and mutation-isolated.
func TestCopyProperty(t *testing.T) {
	f := func(fuel []byte) bool {
		v := arbValue(fuel, 0)
		return Equal(v, Copy(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRefsEnumeration(t *testing.T) {
	v := NewList(
		Ref{Target: fakeObj{1}},
		RecordOf("x", Ref{Target: fakeObj{2}}),
		NewList(Ref{Target: fakeObj{1}}), // duplicate target
	)
	var got []ids.UID
	Refs(v, func(o Obj) { got = append(got, o.UID()) })
	if len(got) != 3 { // Refs reports each reference edge
		t.Fatalf("Refs visited %v", got)
	}
}
