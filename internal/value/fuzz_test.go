package value

import (
	"bytes"
	"testing"
)

// FuzzUnflatten checks that the decoder never panics on arbitrary
// bytes, and that anything it accepts re-encodes to a decodable value
// (Flatten ∘ Unflatten is total on the accepted set).
func FuzzUnflatten(f *testing.F) {
	f.Add(Flatten(Int(42), nil))
	f.Add(Flatten(Str("hello"), nil))
	f.Add(Flatten(NewList(Int(1), UIDRef{UID: 3}), nil))
	f.Add(Flatten(RecordOf("a", Bool(true), "b", Bytes{1, 2}), nil))
	shared := NewList(Int(9))
	f.Add(Flatten(NewList(shared, shared), nil))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unflatten(data)
		if err != nil {
			return
		}
		re := Flatten(v, nil)
		v2, err := Unflatten(re)
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		if !Equal(v, v2) {
			t.Fatalf("re-encode changed value: %s vs %s", String(v), String(v2))
		}
		// Canonical form: encoding is a fixed point after one round.
		re2 := Flatten(v2, nil)
		if !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical")
		}
	})
}
