// Package value models the data held by Argus objects and implements
// the incremental copying ("flattening") algorithm of thesis §2.4.3 and
// §3.3.3.1.
//
// A Value is a graph of regular data — integers, strings, booleans,
// byte strings, lists, records — whose edges may also reference
// recoverable objects (built-in atomic objects and mutex objects).
// Recoverable objects are not part of the value they are referenced
// from: when a value is flattened for writing to the log, the copy
// includes all contained regular data but replaces each reference to a
// recoverable object with that object's UID (Figure 2-2). Sharing of
// regular data within a single flattened value is preserved through
// back-references, which also makes flattening total on cyclic regular
// structure.
//
// During recovery the reverse happens: Unflatten rebuilds the regular
// structure with UIDRef placeholders (the "special object containing
// the uid" of §3.4.3), and the recovery system's final pass calls
// ResolveRefs to replace each placeholder with a volatile reference to
// the restored object.
package value

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ids"
)

// Obj is the face a recoverable object shows to the value layer: enough
// to flatten a reference to it. Concrete implementations live in
// package object.
type Obj interface {
	// UID returns the object's unique identifier.
	UID() ids.UID
}

// Value is the interface satisfied by every node of a value graph.
type Value interface {
	// valueNode is a marker; it restricts the set of implementations to
	// this package's types plus nothing else.
	valueNode()
}

// Int is an integer leaf.
type Int int64

// Str is a string leaf.
type Str string

// Bool is a boolean leaf.
type Bool bool

// Bytes is an opaque byte-string leaf.
type Bytes []byte

// List is a mutable ordered sequence. Lists are regular objects: their
// contents are copied whole into any flattened value that references
// them (§2.4.3).
type List struct {
	Elems []Value
}

// Record is a mutable set of named fields; a regular object like List.
type Record struct {
	Fields map[string]Value
}

// Ref is a volatile reference to a recoverable object. Flattening stops
// here: the target is recorded by UID only.
type Ref struct {
	Target Obj
}

// UIDRef is a reference to a recoverable object by UID alone. It occurs
// inside values reconstructed from the log before the final resolution
// pass (§3.4.3) and inside values being compared structurally.
type UIDRef struct {
	UID ids.UID
}

func (Int) valueNode()     {}
func (Str) valueNode()     {}
func (Bool) valueNode()    {}
func (Bytes) valueNode()   {}
func (*List) valueNode()   {}
func (*Record) valueNode() {}
func (Ref) valueNode()     {}
func (UIDRef) valueNode()  {}

// NewList returns a List with the given elements.
func NewList(elems ...Value) *List { return &List{Elems: elems} }

// NewRecord returns an empty Record.
func NewRecord() *Record { return &Record{Fields: make(map[string]Value)} }

// RecordOf returns a Record with the given alternating key, value pairs.
func RecordOf(pairs ...any) *Record {
	if len(pairs)%2 != 0 {
		panic("value: RecordOf requires key/value pairs")
	}
	r := NewRecord()
	for i := 0; i < len(pairs); i += 2 {
		r.Fields[pairs[i].(string)] = pairs[i+1].(Value)
	}
	return r
}

// String renders a value for debugging and log inspection.
func String(v Value) string {
	var b strings.Builder
	writeString(&b, v, make(map[Value]bool))
	return b.String()
}

func writeString(b *strings.Builder, v Value, seen map[Value]bool) {
	switch x := v.(type) {
	case nil:
		b.WriteString("<nil>")
	case Int:
		fmt.Fprintf(b, "%d", int64(x))
	case Str:
		fmt.Fprintf(b, "%q", string(x))
	case Bool:
		fmt.Fprintf(b, "%t", bool(x))
	case Bytes:
		fmt.Fprintf(b, "0x%x", []byte(x))
	case *List:
		if seen[v] {
			b.WriteString("[...]")
			return
		}
		seen[v] = true
		b.WriteByte('[')
		for i, e := range x.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writeString(b, e, seen)
		}
		b.WriteByte(']')
		delete(seen, v)
	case *Record:
		if seen[v] {
			b.WriteString("{...}")
			return
		}
		seen[v] = true
		b.WriteByte('{')
		for i, k := range sortedKeys(x.Fields) {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s: ", k)
			writeString(b, x.Fields[k], seen)
		}
		b.WriteByte('}')
		delete(seen, v)
	case Ref:
		fmt.Fprintf(b, "&%v", x.Target.UID())
	case UIDRef:
		fmt.Fprintf(b, "&%v", x.UID)
	default:
		fmt.Fprintf(b, "<?%T>", v)
	}
}

func sortedKeys(m map[string]Value) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Copy deep-copies the regular structure of v. References to recoverable
// objects are shared, not copied — exactly the version-copy performed
// when an action acquires a write lock (§2.4.1): the new version may be
// mutated freely without disturbing the base version, while contained
// recoverable objects remain the same objects.
func Copy(v Value) Value {
	return copyValue(v, make(map[Value]Value))
}

func copyValue(v Value, memo map[Value]Value) Value {
	switch x := v.(type) {
	case *List:
		if c, ok := memo[v]; ok {
			return c
		}
		c := &List{Elems: make([]Value, len(x.Elems))}
		memo[v] = c
		for i, e := range x.Elems {
			c.Elems[i] = copyValue(e, memo)
		}
		return c
	case *Record:
		if c, ok := memo[v]; ok {
			return c
		}
		c := NewRecord()
		memo[v] = c
		for k, e := range x.Fields {
			c.Fields[k] = copyValue(e, memo)
		}
		return c
	case Bytes:
		out := make(Bytes, len(x))
		copy(out, x)
		return out
	default:
		// Leaves and references are immutable or shared by design.
		return v
	}
}

// Refs calls visit for every recoverable object referenced (directly or
// through regular structure) by v. Each distinct composite is visited
// once, so cyclic regular structure terminates.
func Refs(v Value, visit func(Obj)) {
	walkRefs(v, visit, make(map[Value]bool))
}

func walkRefs(v Value, visit func(Obj), seen map[Value]bool) {
	switch x := v.(type) {
	case *List:
		if seen[v] {
			return
		}
		seen[v] = true
		for _, e := range x.Elems {
			walkRefs(e, visit, seen)
		}
	case *Record:
		if seen[v] {
			return
		}
		seen[v] = true
		for _, k := range sortedKeys(x.Fields) {
			walkRefs(x.Fields[k], visit, seen)
		}
	case Ref:
		visit(x.Target)
	}
}

// ResolveRefs replaces every UIDRef in v, in place, with a Ref to the
// object returned by lookup. It is the recovery system's final pass
// over volatile memory (§3.4.3). Unresolvable UIDs are reported as an
// error listing the first offender.
func ResolveRefs(v Value, lookup func(ids.UID) (Obj, bool)) (Value, error) {
	return resolve(v, lookup, make(map[Value]bool))
}

func resolve(v Value, lookup func(ids.UID) (Obj, bool), seen map[Value]bool) (Value, error) {
	switch x := v.(type) {
	case UIDRef:
		obj, ok := lookup(x.UID)
		if !ok {
			return nil, fmt.Errorf("value: unresolvable reference to %v", x.UID)
		}
		return Ref{Target: obj}, nil
	case *List:
		if seen[v] {
			return v, nil
		}
		seen[v] = true
		for i, e := range x.Elems {
			r, err := resolve(e, lookup, seen)
			if err != nil {
				return nil, err
			}
			x.Elems[i] = r
		}
		return v, nil
	case *Record:
		if seen[v] {
			return v, nil
		}
		seen[v] = true
		for k, e := range x.Fields {
			r, err := resolve(e, lookup, seen)
			if err != nil {
				return nil, err
			}
			x.Fields[k] = r
		}
		return v, nil
	default:
		return v, nil
	}
}

// Equal reports structural equality of two values. A Ref and a UIDRef
// are equal when they name the same UID; composites are compared
// recursively with cycle protection.
func Equal(a, b Value) bool {
	return equal(a, b, make(map[[2]Value]bool))
}

func refUID(v Value) (ids.UID, bool) {
	switch x := v.(type) {
	case Ref:
		return x.Target.UID(), true
	case UIDRef:
		return x.UID, true
	}
	return 0, false
}

func equal(a, b Value, seen map[[2]Value]bool) bool {
	if ua, oka := refUID(a); oka {
		ub, okb := refUID(b)
		return okb && ua == ub
	}
	switch x := a.(type) {
	case Int:
		y, ok := b.(Int)
		return ok && x == y
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Bytes:
		y, ok := b.(Bytes)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case *List:
		y, ok := b.(*List)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		key := [2]Value{a, b}
		if seen[key] {
			return true
		}
		seen[key] = true
		for i := range x.Elems {
			if !equal(x.Elems[i], y.Elems[i], seen) {
				return false
			}
		}
		return true
	case *Record:
		y, ok := b.(*Record)
		if !ok || len(x.Fields) != len(y.Fields) {
			return false
		}
		key := [2]Value{a, b}
		if seen[key] {
			return true
		}
		seen[key] = true
		for k, v := range x.Fields {
			w, ok := y.Fields[k]
			if !ok || !equal(v, w, seen) {
				return false
			}
		}
		return true
	case nil:
		return b == nil
	}
	return false
}

// --- Flattening codec -------------------------------------------------

// Encoding tags. The format is deterministic: records are encoded in
// sorted field order, so identical values flatten to identical bytes.
const (
	tagInt byte = iota + 1
	tagStr
	tagBool
	tagBytes
	tagList
	tagRecord
	tagUIDRef
	tagBackRef
)

// ErrCorrupt is returned by Unflatten for malformed data.
var ErrCorrupt = errors.New("value: corrupt flattened data")

// Flatten copies v into a self-contained byte string, replacing every
// reference to a recoverable object with its UID and preserving intra-
// value sharing of regular structure. If visit is non-nil it is called
// once per distinct referenced recoverable object, in encounter order —
// this is the hook through which the writing algorithm discovers newly
// accessible objects (§3.3.3.2: "as the object version is copied, the
// recovery system ... checks the AS for every recoverable object it
// comes across").
func Flatten(v Value, visit func(Obj)) []byte {
	f := &flattener{
		indices: make(map[Value]uint32),
		visited: make(map[ids.UID]bool),
		visit:   visit,
	}
	f.encode(v)
	return f.buf
}

type flattener struct {
	buf     []byte
	indices map[Value]uint32 // composite -> back-reference index
	next    uint32
	visited map[ids.UID]bool
	visit   func(Obj)
}

func (f *flattener) byte(b byte)      { f.buf = append(f.buf, b) }
func (f *flattener) uvarint(x uint64) { f.buf = binary.AppendUvarint(f.buf, x) }
func (f *flattener) varint(x int64)   { f.buf = binary.AppendVarint(f.buf, x) }

func (f *flattener) encode(v Value) {
	switch x := v.(type) {
	case nil:
		panic("value: cannot flatten nil value")
	case Int:
		f.byte(tagInt)
		f.varint(int64(x))
	case Str:
		f.byte(tagStr)
		f.uvarint(uint64(len(x)))
		f.buf = append(f.buf, x...)
	case Bool:
		f.byte(tagBool)
		if x {
			f.byte(1)
		} else {
			f.byte(0)
		}
	case Bytes:
		f.byte(tagBytes)
		f.uvarint(uint64(len(x)))
		f.buf = append(f.buf, x...)
	case *List:
		if i, ok := f.indices[v]; ok {
			f.byte(tagBackRef)
			f.uvarint(uint64(i))
			return
		}
		f.indices[v] = f.next
		f.next++
		f.byte(tagList)
		f.uvarint(uint64(len(x.Elems)))
		for _, e := range x.Elems {
			f.encode(e)
		}
	case *Record:
		if i, ok := f.indices[v]; ok {
			f.byte(tagBackRef)
			f.uvarint(uint64(i))
			return
		}
		f.indices[v] = f.next
		f.next++
		f.byte(tagRecord)
		keys := sortedKeys(x.Fields)
		f.uvarint(uint64(len(keys)))
		for _, k := range keys {
			f.uvarint(uint64(len(k)))
			f.buf = append(f.buf, k...)
			f.encode(x.Fields[k])
		}
	case Ref:
		uid := x.Target.UID()
		f.byte(tagUIDRef)
		f.uvarint(uint64(uid))
		if f.visit != nil && !f.visited[uid] {
			f.visited[uid] = true
			f.visit(x.Target)
		}
	case UIDRef:
		f.byte(tagUIDRef)
		f.uvarint(uint64(x.UID))
	default:
		panic(fmt.Sprintf("value: cannot flatten %T", v))
	}
}

// Unflatten rebuilds a value from its flattened form. References to
// recoverable objects come back as UIDRef placeholders; run ResolveRefs
// once the referenced objects exist in volatile memory.
func Unflatten(data []byte) (Value, error) {
	u := &unflattener{data: data}
	v, err := u.decode()
	if err != nil {
		return nil, err
	}
	if u.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-u.pos)
	}
	return v, nil
}

type unflattener struct {
	data       []byte
	pos        int
	composites []Value
}

func (u *unflattener) byte() (byte, error) {
	if u.pos >= len(u.data) {
		return 0, ErrCorrupt
	}
	b := u.data[u.pos]
	u.pos++
	return b, nil
}

func (u *unflattener) uvarint() (uint64, error) {
	x, n := binary.Uvarint(u.data[u.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	u.pos += n
	return x, nil
}

func (u *unflattener) varint() (int64, error) {
	x, n := binary.Varint(u.data[u.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	u.pos += n
	return x, nil
}

func (u *unflattener) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(u.data)-u.pos) {
		return nil, ErrCorrupt
	}
	b := u.data[u.pos : u.pos+int(n)]
	u.pos += int(n)
	return b, nil
}

func (u *unflattener) decode() (Value, error) {
	tag, err := u.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagInt:
		x, err := u.varint()
		if err != nil {
			return nil, err
		}
		return Int(x), nil
	case tagStr:
		n, err := u.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := u.bytes(n)
		if err != nil {
			return nil, err
		}
		return Str(b), nil
	case tagBool:
		b, err := u.byte()
		if err != nil {
			return nil, err
		}
		return Bool(b != 0), nil
	case tagBytes:
		n, err := u.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := u.bytes(n)
		if err != nil {
			return nil, err
		}
		out := make(Bytes, n)
		copy(out, b)
		return out, nil
	case tagList:
		n, err := u.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(u.data)) { // each element takes ≥1 byte
			return nil, ErrCorrupt
		}
		l := &List{Elems: make([]Value, n)}
		u.composites = append(u.composites, l)
		for i := range l.Elems {
			e, err := u.decode()
			if err != nil {
				return nil, err
			}
			l.Elems[i] = e
		}
		return l, nil
	case tagRecord:
		n, err := u.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(u.data)) {
			return nil, ErrCorrupt
		}
		r := NewRecord()
		u.composites = append(u.composites, r)
		for i := uint64(0); i < n; i++ {
			klen, err := u.uvarint()
			if err != nil {
				return nil, err
			}
			k, err := u.bytes(klen)
			if err != nil {
				return nil, err
			}
			v, err := u.decode()
			if err != nil {
				return nil, err
			}
			r.Fields[string(k)] = v
		}
		return r, nil
	case tagUIDRef:
		uid, err := u.uvarint()
		if err != nil {
			return nil, err
		}
		return UIDRef{UID: ids.UID(uid)}, nil
	case tagBackRef:
		i, err := u.uvarint()
		if err != nil {
			return nil, err
		}
		if i >= uint64(len(u.composites)) {
			return nil, fmt.Errorf("%w: back-reference %d of %d", ErrCorrupt, i, len(u.composites))
		}
		return u.composites[i], nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
	}
}
