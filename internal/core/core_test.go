package core

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
	"repro/internal/value"
)

var aid = ids.ActionID{Coordinator: 1, Seq: 1}

// newRS builds a fresh recovery system of each flavor with a seeded
// heap (root + one counter).
func newRS(t *testing.T, b Backend) (RecoverySystem, *stablelog.MemVolume, *object.Heap, *object.Atomic) {
	t.Helper()
	vol := stablelog.NewMemVolume(256)
	heap := object.NewHeap()
	counter := object.NewAtomic(2, value.Int(0), ids.NoAction)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("c", value.Ref{Target: counter}), ids.NoAction)
	heap.Register(root)
	heap.Register(counter)

	var rs RecoverySystem
	var err error
	switch b {
	case BackendShadow:
		rs, err = NewShadow(vol, heap)
	default:
		site, serr := stablelog.CreateSite(vol)
		if serr != nil {
			t.Fatal(serr)
		}
		if b == BackendSimple {
			rs = NewSimple(site, heap)
		} else {
			rs = NewHybrid(site, heap)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	return rs, vol, heap, counter
}

func recover(t *testing.T, b Backend, vol *stablelog.MemVolume) (*Recovered, RecoverySystem) {
	t.Helper()
	vol.Crash()
	vol.Restart()
	var rec *Recovered
	var rs RecoverySystem
	var err error
	switch b {
	case BackendShadow:
		rec, rs, err = RecoverShadow(vol)
	default:
		site, serr := stablelog.OpenSite(vol)
		if serr != nil {
			t.Fatal(serr)
		}
		if b == BackendSimple {
			rec, rs, err = RecoverSimple(site)
		} else {
			rec, rs, err = RecoverHybrid(site)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	return rec, rs
}

func TestRoundTripAllBackends(t *testing.T) {
	for _, b := range []Backend{BackendSimple, BackendHybrid, BackendShadow} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			rs, vol, _, counter := newRS(t, b)
			if rs.Backend() != b {
				t.Fatalf("Backend() = %v", rs.Backend())
			}
			if err := counter.AcquireWrite(aid); err != nil {
				t.Fatal(err)
			}
			counter.Replace(aid, value.Int(7))
			if err := rs.Prepare(aid, object.MOS{counter}); err != nil {
				t.Fatal(err)
			}
			if !rs.PAT().Contains(aid) {
				t.Fatal("prepared action not in PAT")
			}
			if err := rs.Committing(aid, []ids.GuardianID{1}); err != nil {
				t.Fatal(err)
			}
			if err := rs.Commit(aid); err != nil {
				t.Fatal(err)
			}
			counter.Commit(aid)
			if err := rs.Done(aid); err != nil {
				t.Fatal(err)
			}
			if rs.LogBytes() == 0 || rs.Forces() == 0 {
				t.Fatalf("stats: bytes=%d forces=%d", rs.LogBytes(), rs.Forces())
			}

			rec, _ := recover(t, b, vol)
			o, ok := rec.Heap.Lookup(2)
			if !ok {
				t.Fatal("counter lost")
			}
			if got := o.(*object.Atomic).Base(); !value.Equal(got, value.Int(7)) {
				t.Fatalf("counter = %s", value.String(got))
			}
			// The logs retain the whole action history in the PT; the
			// shadow scheme resolves commits into the installed map and
			// keeps only in-doubt actions.
			if b == BackendShadow {
				if len(rec.PT) != 0 {
					t.Fatalf("shadow PT = %v, want only in-doubt actions", rec.PT)
				}
			} else if rec.PT[aid] != simplelog.PartCommitted {
				t.Fatalf("PT = %v", rec.PT)
			}
			ci, ok := rec.CT[aid]
			if !ok || ci.State != simplelog.CoordDone {
				t.Fatalf("CT = %v", rec.CT)
			}
			if rec.EntriesRead == 0 {
				t.Fatal("recovery read no entries")
			}
		})
	}
}

func TestAbortAllBackends(t *testing.T) {
	for _, b := range []Backend{BackendSimple, BackendHybrid, BackendShadow} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			rs, vol, _, counter := newRS(t, b)
			// First commit the initial state so the counter exists on
			// stable storage.
			init := ids.ActionID{Coordinator: 1, Seq: 50}
			if err := rs.Prepare(init, object.MOS{}); err != nil {
				t.Fatal(err)
			}
			if err := rs.Commit(init); err != nil {
				t.Fatal(err)
			}
			if err := counter.AcquireWrite(aid); err != nil {
				t.Fatal(err)
			}
			counter.Replace(aid, value.Int(99))
			if err := rs.Prepare(aid, object.MOS{counter}); err != nil {
				t.Fatal(err)
			}
			if err := rs.Abort(aid); err != nil {
				t.Fatal(err)
			}
			counter.Abort(aid)
			if rs.PAT().Contains(aid) {
				t.Fatal("aborted action still in PAT")
			}
			rec, _ := recover(t, b, vol)
			o, _ := rec.Heap.Lookup(2)
			if got := o.(*object.Atomic).Base(); !value.Equal(got, value.Int(0)) {
				t.Fatalf("counter = %s, want 0", value.String(got))
			}
		})
	}
}

func TestUnsupportedOperations(t *testing.T) {
	for _, b := range []Backend{BackendSimple, BackendShadow} {
		rs, _, _, counter := newRS(t, b)
		if _, err := rs.WriteEntry(aid, object.MOS{counter}); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%v WriteEntry err = %v", b, err)
		}
		if _, err := rs.Housekeep(HousekeepCompact); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%v Housekeep err = %v", b, err)
		}
	}
}

func TestHybridExtras(t *testing.T) {
	rs, vol, _, counter := newRS(t, BackendHybrid)
	init := ids.ActionID{Coordinator: 1, Seq: 50}
	if err := rs.Prepare(init, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Commit(init); err != nil {
		t.Fatal(err)
	}
	if err := counter.AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	counter.Replace(aid, value.Int(3))
	rest, err := rs.WriteEntry(aid, object.MOS{counter})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %v", rest)
	}
	if err := rs.Prepare(aid, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Commit(aid); err != nil {
		t.Fatal(err)
	}
	counter.Commit(aid)
	for _, kind := range []HousekeepKind{HousekeepCompact, HousekeepSnapshot} {
		// The hybridRS keeps its own site; housekeeping twice exercises
		// generation advancing through the interface.
		if _, err := rs.Housekeep(kind); err != nil {
			t.Fatalf("housekeep %d: %v", kind, err)
		}
	}
	if _, err := rs.Housekeep(HousekeepKind(99)); err == nil {
		t.Fatal("unknown housekeeping kind accepted")
	}
	rec, _ := recover(t, BackendHybrid, vol)
	o, _ := rec.Heap.Lookup(2)
	if got := o.(*object.Atomic).Base(); !value.Equal(got, value.Int(3)) {
		t.Fatalf("counter = %s", value.String(got))
	}
}

func TestBackendStrings(t *testing.T) {
	if BackendSimple.String() != "simple" || BackendHybrid.String() != "hybrid" ||
		BackendShadow.String() != "shadow" {
		t.Fatal("backend strings wrong")
	}
	if Backend(42).String() == "" {
		t.Fatal("unknown backend string empty")
	}
}
