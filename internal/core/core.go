// Package core implements the recovery system of thesis §2.3: the
// component of each guardian that writes information to stable storage
// as needed by two-phase commit, restores the guardian's stable state
// after a crash, and reorganizes stable storage to make recovery more
// efficient.
//
// The recovery system exposes the operations the Argus system calls
// (§2.3): prepare, commit, abort, committing, done, recovery, and
// housekeeping — plus write_entry for early prepare (§4.4). Three
// interchangeable backends realize them:
//
//   - BackendSimple: the chapter 3 simple log (the pure-log end of the
//     organization spectrum — fast writing, slow recovery).
//   - BackendHybrid: the chapter 4/5 hybrid log (the thesis's
//     contribution — fast writing and reasonably fast recovery, with
//     housekeeping).
//   - BackendShadow: the shadowed-objects scheme of §1.2.1 (slow
//     writing, fast recovery), the comparison baseline.
package core

import (
	"fmt"

	"repro/internal/hybridlog"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/shadow"
	"repro/internal/simplelog"
	"repro/internal/stablelog"
)

// Backend selects a stable-storage organization.
type Backend uint8

const (
	// BackendSimple is the chapter 3 simple log.
	BackendSimple Backend = iota + 1
	// BackendHybrid is the chapter 4 hybrid log (the default).
	BackendHybrid
	// BackendShadow is the §1.2.1 shadowing baseline.
	BackendShadow
)

func (b Backend) String() string {
	switch b {
	case BackendSimple:
		return "simple"
	case BackendHybrid:
		return "hybrid"
	case BackendShadow:
		return "shadow"
	default:
		return fmt.Sprintf("backend(%d)", uint8(b))
	}
}

// HousekeepKind selects a chapter 5 housekeeping algorithm.
type HousekeepKind uint8

const (
	// HousekeepCompact is log compaction (§5.1).
	HousekeepCompact HousekeepKind = iota + 1
	// HousekeepSnapshot is the stable-state snapshot (§5.2).
	HousekeepSnapshot
)

// ErrUnsupported is returned for operations a backend does not provide
// (early prepare and housekeeping exist only on the hybrid log).
var ErrUnsupported = fmt.Errorf("core: operation unsupported by this backend")

// RecoverySystem is the per-guardian interface of thesis §2.3.
type RecoverySystem interface {
	// Prepare writes the accessible objects of the MOS and the prepared
	// record for aid (§2.3 op 1).
	Prepare(aid ids.ActionID, mos object.MOS) error
	// Commit writes the committed record (§2.3 op 2).
	Commit(aid ids.ActionID) error
	// Abort writes the aborted record (§2.3 op 3).
	Abort(aid ids.ActionID) error
	// Committing writes the coordinator's committing record (§2.3 op 4).
	Committing(aid ids.ActionID, gids []ids.GuardianID) error
	// Done writes the coordinator's done record (§2.3 op 5).
	Done(aid ids.ActionID) error
	// WriteEntry early-prepares the MOS (§4.4), returning the objects
	// not yet written. Backends without early prepare return
	// ErrUnsupported.
	WriteEntry(aid ids.ActionID, mos object.MOS) (object.MOS, error)
	// Housekeep reorganizes stable storage (§2.3 op 7). Backends
	// without housekeeping return ErrUnsupported.
	Housekeep(kind HousekeepKind) (hybridlog.Stats, error)
	// TrimAS trims the accessibility set by traversing the stable
	// state and intersecting with the current set (§3.3.3.2).
	TrimAS()
	// PAT returns the prepared actions table.
	PAT() *object.PAT
	// AS returns the accessibility set.
	AS() *object.AccessSet
	// Backend identifies the storage organization.
	Backend() Backend
	// SetSynchronousForces pins (on=true) or lifts (on=false) fully
	// synchronous forcing on the backend's log. The default is group
	// commit: outcome forces coalesce across concurrent actions.
	// Synchronous mode makes the device-write sequence a pure function
	// of the operation sequence, which the crash sweep depends on. The
	// shadow backend ignores it — shadowing is inherently synchronous
	// (every operation rewrites the installed map in place; there is no
	// append-only suffix for concurrent committers to share).
	SetSynchronousForces(on bool)
	// LogBytes returns the current stable-log size, and Forces the
	// number of force operations — the write-cost measures of §1.2.
	LogBytes() uint64
	Forces() int
	// SetTracer installs (or, with nil, removes) the event tracer on
	// the backend's writer and current log. The guardian layer wraps
	// the caller's tracer with its guardian id before installing it.
	SetTracer(tr obs.Tracer)
	// SetReplicator installs (or, with nil, removes) the replication
	// hook on the backend's log site: with it set, every outcome force
	// additionally waits for a replica quorum (internal/replog). The
	// shadow backend ignores it — shadowing ships no log and is out of
	// replication's scope, exactly as it is out of the group-commit
	// scheduler's.
	SetReplicator(r stablelog.Replicator)
	// Site returns the backend's log site, or nil for backends that
	// have none (shadow). Replication primaries read the durable
	// boundary and raw frames through it.
	Site() *stablelog.Site
}

// Recovered is what the recovery operation returns to the Argus system
// (§2.3 op 6): the reconstructed tables plus a resumed RecoverySystem.
type Recovered struct {
	Heap   *object.Heap
	AS     *object.AccessSet
	PAT    *object.PAT
	PT     map[ids.ActionID]simplelog.PartState
	CT     map[ids.ActionID]simplelog.CoordInfo
	MaxUID ids.UID
	// EntriesRead measures recovery cost (entries or records examined).
	EntriesRead int
}

// --- hybrid backend ----------------------------------------------------

type hybridRS struct {
	site *stablelog.Site
	w    *hybridlog.Writer
}

// NewHybrid creates a hybrid-log recovery system for a fresh guardian.
func NewHybrid(site *stablelog.Site, heap *object.Heap) RecoverySystem {
	return &hybridRS{
		site: site,
		w: hybridlog.NewWriter(site.Log(), heap, object.NewAccessSet(),
			object.NewPAT(), stablelog.NoLSN, nil),
	}
}

// RecoverHybrid restores a guardian from its hybrid log after a crash.
func RecoverHybrid(site *stablelog.Site) (*Recovered, RecoverySystem, error) {
	t, err := hybridlog.Recover(site.Log())
	if err != nil {
		return nil, nil, err
	}
	rs := &hybridRS{
		site: site,
		w:    hybridlog.NewWriter(site.Log(), t.Heap, t.AS, t.PAT, t.ChainHead, t.MT),
	}
	return &Recovered{
		Heap: t.Heap, AS: t.AS, PAT: t.PAT, PT: t.PT, CT: t.CT,
		MaxUID: t.MaxUID, EntriesRead: t.OutcomesRead + t.DataRead,
	}, rs, nil
}

func (r *hybridRS) Prepare(aid ids.ActionID, mos object.MOS) error { return r.w.Prepare(aid, mos) }
func (r *hybridRS) Commit(aid ids.ActionID) error                  { return r.w.Commit(aid) }
func (r *hybridRS) Abort(aid ids.ActionID) error                   { return r.w.Abort(aid) }
func (r *hybridRS) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	return r.w.Committing(aid, gids)
}
func (r *hybridRS) Done(aid ids.ActionID) error { return r.w.Done(aid) }
func (r *hybridRS) WriteEntry(aid ids.ActionID, mos object.MOS) (object.MOS, error) {
	return r.w.WriteEntry(aid, mos)
}
func (r *hybridRS) Housekeep(kind HousekeepKind) (hybridlog.Stats, error) {
	switch kind {
	case HousekeepCompact:
		return r.w.CompactLog(r.site)
	case HousekeepSnapshot:
		return r.w.SnapshotLog(r.site)
	default:
		return hybridlog.Stats{}, fmt.Errorf("core: unknown housekeeping kind %d", kind)
	}
}
func (r *hybridRS) TrimAS()                      { r.w.TrimAS() }
func (r *hybridRS) PAT() *object.PAT             { return r.w.PAT() }
func (r *hybridRS) AS() *object.AccessSet        { return r.w.AS() }
func (r *hybridRS) Backend() Backend             { return BackendHybrid }
func (r *hybridRS) LogBytes() uint64             { return r.w.Log().Size() }
func (r *hybridRS) Forces() int                  { return r.w.Log().Forces() }
func (r *hybridRS) SetSynchronousForces(on bool) { r.site.SetSynchronousForces(on) }
func (r *hybridRS) SetTracer(tr obs.Tracer) {
	r.w.SetTracer(tr)
	r.site.SetTracer(tr)
}
func (r *hybridRS) SetReplicator(rep stablelog.Replicator) { r.site.SetReplicator(rep) }
func (r *hybridRS) Site() *stablelog.Site                  { return r.site }

// --- simple backend ----------------------------------------------------

type simpleRS struct {
	site *stablelog.Site
	w    *simplelog.Writer
}

// NewSimple creates a simple-log recovery system for a fresh guardian.
func NewSimple(site *stablelog.Site, heap *object.Heap) RecoverySystem {
	return &simpleRS{
		site: site,
		w:    simplelog.NewWriter(site.Log(), heap, object.NewAccessSet(), object.NewPAT()),
	}
}

// RecoverSimple restores a guardian from its simple log after a crash.
func RecoverSimple(site *stablelog.Site) (*Recovered, RecoverySystem, error) {
	t, err := simplelog.Recover(site.Log())
	if err != nil {
		return nil, nil, err
	}
	rs := &simpleRS{
		site: site,
		w:    simplelog.NewWriter(site.Log(), t.Heap, t.AS, t.PAT),
	}
	return &Recovered{
		Heap: t.Heap, AS: t.AS, PAT: t.PAT, PT: t.PT, CT: t.CT,
		MaxUID: t.MaxUID, EntriesRead: t.EntriesRead,
	}, rs, nil
}

func (r *simpleRS) Prepare(aid ids.ActionID, mos object.MOS) error { return r.w.Prepare(aid, mos) }
func (r *simpleRS) Commit(aid ids.ActionID) error                  { return r.w.Commit(aid) }
func (r *simpleRS) Abort(aid ids.ActionID) error                   { return r.w.Abort(aid) }
func (r *simpleRS) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	return r.w.Committing(aid, gids)
}
func (r *simpleRS) Done(aid ids.ActionID) error { return r.w.Done(aid) }
func (r *simpleRS) WriteEntry(ids.ActionID, object.MOS) (object.MOS, error) {
	return nil, ErrUnsupported
}
func (r *simpleRS) Housekeep(HousekeepKind) (hybridlog.Stats, error) {
	return hybridlog.Stats{}, ErrUnsupported
}
func (r *simpleRS) TrimAS()                      { r.w.TrimAS() }
func (r *simpleRS) PAT() *object.PAT             { return r.w.PAT() }
func (r *simpleRS) AS() *object.AccessSet        { return r.w.AS() }
func (r *simpleRS) Backend() Backend             { return BackendSimple }
func (r *simpleRS) LogBytes() uint64             { return r.w.Log().Size() }
func (r *simpleRS) Forces() int                  { return r.w.Log().Forces() }
func (r *simpleRS) SetSynchronousForces(on bool) { r.site.SetSynchronousForces(on) }
func (r *simpleRS) SetTracer(tr obs.Tracer) {
	r.w.SetTracer(tr)
	r.site.SetTracer(tr)
}
func (r *simpleRS) SetReplicator(rep stablelog.Replicator) { r.site.SetReplicator(rep) }
func (r *simpleRS) Site() *stablelog.Site                  { return r.site }

// --- shadow backend ----------------------------------------------------

type shadowRS struct {
	s *shadow.Store
}

// NewShadow creates a shadowing recovery system for a fresh guardian
// over a volume: generation 1 holds the version area, the root store
// the installed-map pointer.
func NewShadow(vol stablelog.Volume, heap *object.Heap) (RecoverySystem, error) {
	root, err := vol.Root()
	if err != nil {
		return nil, err
	}
	vsStore, err := vol.Generation(1)
	if err != nil {
		return nil, err
	}
	return &shadowRS{s: shadow.New(stablelog.New(vsStore), root, heap)}, nil
}

// RecoverShadow restores a guardian from shadow storage after a crash.
func RecoverShadow(vol stablelog.Volume) (*Recovered, RecoverySystem, error) {
	root, err := vol.Root()
	if err != nil {
		return nil, nil, err
	}
	if err := root.Recover(); err != nil {
		return nil, nil, err
	}
	vsStore, err := vol.Generation(1)
	if err != nil {
		return nil, nil, err
	}
	if err := vsStore.Recover(); err != nil {
		return nil, nil, err
	}
	vs, err := stablelog.Open(vsStore)
	if err != nil {
		return nil, nil, err
	}
	t, s, err := shadow.Recover(vs, root)
	if err != nil {
		return nil, nil, err
	}
	pt := make(map[ids.ActionID]simplelog.PartState)
	for aid := range t.Prepared {
		pt[aid] = simplelog.PartPrepared
	}
	ct := make(map[ids.ActionID]simplelog.CoordInfo)
	for aid, gids := range t.Committing {
		ct[aid] = simplelog.CoordInfo{State: simplelog.CoordCommitting, GIDs: gids}
	}
	for aid := range t.Done {
		ct[aid] = simplelog.CoordInfo{State: simplelog.CoordDone}
	}
	return &Recovered{
		Heap: t.Heap, AS: t.AS, PAT: t.PAT, PT: pt, CT: ct,
		MaxUID: t.MaxUID, EntriesRead: t.EntriesRead,
	}, &shadowRS{s: s}, nil
}

func (r *shadowRS) Prepare(aid ids.ActionID, mos object.MOS) error { return r.s.Prepare(aid, mos) }
func (r *shadowRS) Commit(aid ids.ActionID) error                  { return r.s.Commit(aid) }
func (r *shadowRS) Abort(aid ids.ActionID) error                   { return r.s.Abort(aid) }
func (r *shadowRS) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	return r.s.Committing(aid, gids)
}
func (r *shadowRS) Done(aid ids.ActionID) error { return r.s.Done(aid) }
func (r *shadowRS) WriteEntry(ids.ActionID, object.MOS) (object.MOS, error) {
	return nil, ErrUnsupported
}
func (r *shadowRS) Housekeep(HousekeepKind) (hybridlog.Stats, error) {
	return hybridlog.Stats{}, ErrUnsupported
}
func (r *shadowRS) TrimAS()               { r.s.TrimAS() }
func (r *shadowRS) PAT() *object.PAT      { return r.s.PAT() }
func (r *shadowRS) AS() *object.AccessSet { return r.s.AS() }
func (r *shadowRS) Backend() Backend      { return BackendShadow }
func (r *shadowRS) LogBytes() uint64      { return r.s.Log().Size() }
func (r *shadowRS) Forces() int           { return r.s.Log().Forces() }

// SetSynchronousForces is a no-op for shadowing: every operation
// rewrites the installed map synchronously (§1.2.1) — there is no
// append-only log suffix for concurrent committers to share, so the
// shadow write path is the same in both modes.
func (r *shadowRS) SetSynchronousForces(bool) {}

func (r *shadowRS) SetTracer(tr obs.Tracer) { r.s.SetTracer(tr) }

// SetReplicator is a no-op for shadowing: there is no stable log to
// ship, so the shadow backend sits outside replication's scope (as it
// sits outside group commit's).
func (r *shadowRS) SetReplicator(stablelog.Replicator) {}

// Site returns nil: the shadow backend keeps no log site.
func (r *shadowRS) Site() *stablelog.Site { return nil }
