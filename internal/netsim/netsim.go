// Package netsim provides a deterministic simulated network between
// guardians. Argus guardians communicate only by messages (§2.1); for
// reproducing the thesis's crash scenarios the network must allow
// tests to take nodes down, cut links, and count traffic, with fully
// deterministic outcomes.
//
// Communication is modeled as synchronous calls: Call(from, to, fn)
// runs fn if and only if both endpoints are up and the link is intact.
// The two-phase commit engine (package twopc) issues all its messages
// through a Network, so every unreachability branch of §2.2 is
// exercisable.
package netsim

import (
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// ErrUnreachable is returned when a call cannot be delivered: an
// endpoint is down or the link is cut. It wraps
// transport.ErrUnreachable (keeping its historical text), so protocol
// code written against the Transport interface matches it with a
// single errors.Is over either implementation.
var ErrUnreachable = fmt.Errorf("netsim: %w", transport.ErrUnreachable)

// Network implements the delivery contract the protocol layers are
// written against.
var _ transport.Transport = (*Network)(nil)

// Network is a simulated network. The zero value is not usable; call
// New.
type Network struct {
	mu        sync.Mutex
	down      map[ids.GuardianID]bool
	cut       map[[2]ids.GuardianID]bool
	delivered int
	refused   int
	tr        obs.Tracer
}

// SetTracer installs (or, with nil, removes) the network's event
// tracer: every Call emits one net.call event, OK for a delivered
// message and !err for a refused one.
func (n *Network) SetTracer(tr obs.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tr = tr
}

// New returns a network where every guardian is up and connected.
func New() *Network {
	return &Network{
		down: make(map[ids.GuardianID]bool),
		cut:  make(map[[2]ids.GuardianID]bool),
	}
}

func linkKey(a, b ids.GuardianID) [2]ids.GuardianID {
	if a > b {
		a, b = b, a
	}
	return [2]ids.GuardianID{a, b}
}

// SetDown marks a guardian's node as crashed (true) or restarted
// (false). A down node neither sends nor receives.
func (n *Network) SetDown(g ids.GuardianID, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[g] = down
}

// Cut severs (true) or restores (false) the link between two guardians,
// simulating a partition.
func (n *Network) Cut(a, b ids.GuardianID, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey(a, b)] = cut
}

// Reachable reports whether a message from a to b would be delivered.
func (n *Network) Reachable(a, b ids.GuardianID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reachableLocked(a, b)
}

func (n *Network) reachableLocked(a, b ids.GuardianID) bool {
	if n.down[a] || n.down[b] {
		return false
	}
	if a != b && n.cut[linkKey(a, b)] {
		return false
	}
	return true
}

// Call delivers a synchronous message from a to b by running fn, or
// returns ErrUnreachable without running it. Calls to self still check
// that the node is up.
func (n *Network) Call(a, b ids.GuardianID, fn func() error) error {
	n.mu.Lock()
	tr := n.tr
	if !n.reachableLocked(a, b) {
		n.refused++
		n.mu.Unlock()
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindNetCall, From: uint64(a), To: uint64(b)})
		}
		return fmt.Errorf("%w: %v -> %v", ErrUnreachable, a, b)
	}
	n.delivered++
	n.mu.Unlock()
	// Emitted before fn so the delivery precedes the events fn's work
	// produces, matching the message's causal order in the trace.
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindNetCall, From: uint64(a), To: uint64(b), OK: true})
	}
	return fn()
}

// Stats returns (delivered, refused) message counts.
func (n *Network) Stats() (int, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.refused
}
