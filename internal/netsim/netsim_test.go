package netsim

import (
	"errors"
	"testing"

	"repro/internal/ids"
)

func TestCallDelivery(t *testing.T) {
	n := New()
	ran := false
	if err := n.Call(1, 2, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("call not delivered")
	}
	d, r := n.Stats()
	if d != 1 || r != 0 {
		t.Fatalf("stats = %d/%d", d, r)
	}
}

func TestDownNode(t *testing.T) {
	n := New()
	n.SetDown(2, true)
	err := n.Call(1, 2, func() error { t.Fatal("delivered to down node"); return nil })
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	// Down sender cannot send either.
	if err := n.Call(2, 1, func() error { return nil }); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("down sender: %v", err)
	}
	n.SetDown(2, false)
	if err := n.Call(1, 2, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestCutLink(t *testing.T) {
	n := New()
	n.Cut(1, 2, true)
	if err := n.Call(1, 2, func() error { return nil }); !errors.Is(err, ErrUnreachable) {
		t.Fatal("cut link delivered")
	}
	// Symmetric.
	if err := n.Call(2, 1, func() error { return nil }); !errors.Is(err, ErrUnreachable) {
		t.Fatal("cut link delivered (reverse)")
	}
	// Other links unaffected.
	if err := n.Call(1, 3, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	n.Cut(1, 2, false)
	if err := n.Call(1, 2, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSelfCall(t *testing.T) {
	n := New()
	if err := n.Call(1, 1, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	n.SetDown(1, true)
	if err := n.Call(1, 1, func() error { return nil }); !errors.Is(err, ErrUnreachable) {
		t.Fatal("down node called itself")
	}
	// Cutting a "self link" is meaningless and ignored.
	n.SetDown(1, false)
	n.Cut(1, 1, true)
	if err := n.Call(1, 1, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestReachable(t *testing.T) {
	n := New()
	if !n.Reachable(ids.GuardianID(1), ids.GuardianID(2)) {
		t.Fatal("fresh network unreachable")
	}
	n.Cut(1, 2, true)
	if n.Reachable(1, 2) {
		t.Fatal("cut link reachable")
	}
}
