package lockdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "a")
}

func TestForceUnderLock(t *testing.T) {
	// Rule 4 is scoped by import path; scope the testdata package the
	// way internal/guardian and the writer packages are.
	const pkg = "repro/internal/analysis/lockdiscipline/testdata/src/c"
	lockdiscipline.ForcePathPackages[pkg] = true
	defer delete(lockdiscipline.ForcePathPackages, pkg)
	analysistest.Run(t, lockdiscipline.Analyzer, "c")
}

func TestIndexConfinement(t *testing.T) {
	// Rule 5 is scoped by import path; scope the testdata package the
	// way internal/guardian is.
	const pkg = "repro/internal/analysis/lockdiscipline/testdata/src/d"
	lockdiscipline.IndexPackages[pkg] = true
	defer delete(lockdiscipline.IndexPackages, pkg)
	analysistest.Run(t, lockdiscipline.Analyzer, "d")
}

func TestDeviceUnderLock(t *testing.T) {
	// Rule 3 is scoped by import path; scope the testdata package the
	// way internal/stablelog is.
	const pkg = "repro/internal/analysis/lockdiscipline/testdata/src/b"
	lockdiscipline.LogPackages[pkg] = true
	defer delete(lockdiscipline.LogPackages, pkg)
	analysistest.Run(t, lockdiscipline.Analyzer, "b")
}
