// Package d exercises lockdiscipline rule 5: live-version index
// mutations outside the guardian's installers are flagged; the
// installers themselves, read-side methods, and annotated departures
// are not.
package d

import (
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/objindex"
	"repro/internal/value"
)

type guardianLike struct {
	idx *objindex.Index
}

func flat(o *object.Atomic) []byte { return o.SnapshotBase(nil) }

// The commit-path installer: mutations allowed.
func (g *guardianLike) installCommitted(objs []*object.Atomic) {
	for _, o := range objs {
		g.idx.Install(o, flat(o), 0)
	}
	g.idx.ReplaceBindings(nil, flat, 0)
}

// The recovery rebuilder: mutations allowed.
func (g *guardianLike) rebuildIndex(pairs []objindex.Binding) {
	g.idx.Rebuild(pairs, flat, 0)
}

// A read-path helper sneaking an install in: flagged.
func (g *guardianLike) readThrough(o *object.Atomic) ([]byte, bool) {
	if e, ok := g.idx.Get("k"); ok {
		return e.Flat, true
	}
	b := flat(o)
	g.idx.Install(o, b, 0) // want `objindex\.Index\.Install\(\) outside the installers`
	return b, false
}

// Rebinding from an abort path: flagged (aborts must not touch the
// index at all).
func (g *guardianLike) abortRebind(pairs []objindex.Binding) {
	g.idx.ReplaceBindings(pairs, flat, 0) // want `objindex\.Index\.ReplaceBindings\(\) outside the installers`
}

// A rebuild from an unaudited site, even inside a function literal:
// flagged.
func (g *guardianLike) sneakyRebuild(pairs []objindex.Binding) {
	redo := func() {
		g.idx.Rebuild(pairs, flat, 0) // want `objindex\.Index\.Rebuild\(\) outside the installers`
	}
	redo()
}

// Read-side methods are unrestricted.
func (g *guardianLike) readOnly(key string) (int, bool) {
	if o, ok := g.idx.Bound(key); ok {
		_ = o.UID()
	}
	_ = g.idx.Snapshot()
	_ = g.idx.Stats()
	e, ok := g.idx.Get(key)
	return len(e.Flat), ok
}

// An audited departure carries the directive.
func (g *guardianLike) migrate(o *object.Atomic) {
	//roslint:lockorder one-shot migration helper, runs before the guardian serves
	g.idx.Install(o, flat(o), 0)
}

// Constructing entries for the installers is fine anywhere.
func makeBindings() []objindex.Binding {
	o := object.NewAtomic(ids.UID(7), value.Int(1), ids.NoAction)
	return []objindex.Binding{{Key: "k", Obj: o}}
}
