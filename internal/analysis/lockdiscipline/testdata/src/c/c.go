// Package c exercises lockdiscipline rule 4: force waits and
// recovery-system operations under a held mutex are flagged in the
// force-path packages; buffered appends and unlocked waits are not.
package c

import (
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/stablelog"
)

type writer struct {
	mu  sync.Mutex
	log *stablelog.Log
}

// A force wait under the writer mutex: flagged.
func (w *writer) commitSerial(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := w.log.ForceWrite(payload) // want `ForceWrite\(\) waits on a log force while w.mu is held`
	return err
}

// ForceTo under the lock is just as bad: flagged.
func (w *writer) awaitSerial(lsn stablelog.LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.ForceTo(lsn) // want `ForceTo\(\) waits on a log force while w.mu is held`
}

// A bare Force under the lock: flagged.
func (w *writer) flushSerial() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Force() // want `Force\(\) waits on a log force while w.mu is held`
}

// The group-commit split: append under the lock, await after the
// unlock. Not flagged.
func (w *writer) commitGroup(payload []byte) error {
	w.mu.Lock()
	lsn, err := w.log.Write(payload)
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.log.ForceTo(lsn)
}

type guardianLike struct {
	mu sync.Mutex
	rs core.RecoverySystem
}

// A recovery-system operation (which forces internally) under the
// table lock: flagged.
func (g *guardianLike) prepareSerial(aid ids.ActionID, mos object.MOS) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rs.Prepare(aid, mos) // want `Prepare\(\) waits on a log force while g.mu is held`
}

// The same operation outside the lock: not flagged.
func (g *guardianLike) prepareConcurrent(aid ids.ActionID, mos object.MOS) error {
	g.mu.Lock()
	g.mu.Unlock()
	return g.rs.Prepare(aid, mos)
}

// Non-forcing recovery-system accessors are fine under the lock.
func (g *guardianLike) patUnderLock() *object.PAT {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rs.PAT()
}
