// Package b exercises lockdiscipline rule 3: in a log package, raw
// stable.Device I/O under a held mutex is flagged — device access must
// go through stable.Store (lock order Log → Store → Device).
package b

import (
	"sync"

	"repro/internal/stable"
)

type journal struct {
	mu  sync.Mutex
	dev stable.Device
	st  *stable.Store
}

func (j *journal) rawUnderLock(buf []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dev.WriteBlock(0, buf) // want `raw stable.Device.WriteBlock under a held mutex`
}

// Store methods serialize their own device access: not flagged.
func (j *journal) throughStore(buf []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.WritePage(0, buf)
}

// Raw device access without the lock held is the store's own business:
// not flagged by rule 3.
func (j *journal) unlocked(buf []byte) error {
	return j.dev.WriteBlock(1, buf)
}
