// Package a exercises lockdiscipline rules 1 and 2: release on every
// path and no reentrant self-calls. Hand-unlock straight-line code,
// branch-aware unlock-then-return, deferred RWMutex releases, and a
// justified lock handoff are all accepted.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// defer is the canonical pattern: not flagged.
func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Hand unlock on the single path: not flagged.
func (c *counter) handUnlock() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

// Unlock-then-return inside a branch, unlock on the fall-through: the
// pattern guardian handlers use. Not flagged.
func (c *counter) branched(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		c.mu.Unlock()
		return limit
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// Returning while the lock is held: flagged.
func (c *counter) leakReturn() int {
	c.mu.Lock()
	if c.n > 0 {
		return c.n // want `return while holding c.mu`
	}
	c.mu.Unlock()
	return 0
}

// Falling off the end while the lock is held: flagged at the Lock.
func (c *counter) leakFallthrough() {
	c.mu.Lock() // want `c.mu locked here but not released on the fall-through path`
	c.n++
}

// Branches that disagree about the lock: flagged at the merge.
func (c *counter) inconsistent(b bool) {
	c.mu.Lock()
	if b { // want `c.mu is held on some paths but not others`
		c.mu.Unlock()
	}
}

// Double acquisition self-deadlocks (sync.Mutex is not reentrant).
func (c *counter) relock() {
	c.mu.Lock()
	c.mu.Lock() // want `c.mu locked while already held: self-deadlock`
	c.mu.Unlock()
	c.mu.Unlock()
}

// Incr acquires c.mu; calling it with c.mu held self-deadlocks.
func (c *counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) deadlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Incr() // want `Incr\(\) acquires c.mu which is already held`
}

// Calling the locking method after releasing is fine.
func (c *counter) sequential() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.Incr()
}

// A deliberate lock handoff with a justification: suppressed.
func (c *counter) lockForCaller() {
	//roslint:lockorder lock handoff: the paired releaseForCaller unlocks
	c.mu.Lock()
}

func (c *counter) releaseForCaller() {
	c.mu.Unlock()
}

type table struct {
	mu sync.RWMutex
	m  map[int]int
}

// RWMutex read path with a matching deferred release: not flagged.
func (t *table) get(k int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// An infinite wait loop that only exits by returning (the
// internal/object pattern): not flagged.
func (t *table) wait(k int) int {
	t.mu.RLock()
	for {
		if v, ok := t.m[k]; ok {
			t.mu.RUnlock()
			return v
		}
		t.mu.RUnlock()
		t.mu.RLock()
	}
}

// --- CFG-only cases: the PR 2 statement-tree walk gave up at any
// break/continue/goto ("path end without a verdict"); the flow
// analysis follows them. ---

// goto with the lock held reaches the label's return unreleased.
func (c *counter) gotoLeak() int {
	c.mu.Lock()
	if c.n > 0 {
		goto out
	}
	c.mu.Unlock()
	return 0
out:
	return c.n // want `return while holding c.mu`
}

// goto on a path that released first: not flagged.
func (c *counter) gotoClean() int {
	c.mu.Lock()
	if c.n > 0 {
		c.mu.Unlock()
		goto out
	}
	c.mu.Unlock()
	return 0
out:
	return c.n
}

// Labeled continue with the lock released on every path: not flagged.
func (c *counter) labeledContinue(xs [][]int) int {
	total := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			c.mu.Lock()
			if v < 0 {
				c.mu.Unlock()
				continue outer
			}
			total += v
			c.mu.Unlock()
		}
	}
	return total
}

// Labeled break escaping both loops with the lock held disagrees with
// the loop's normal exit: flagged at the join after the outer loop.
func (c *counter) labeledBreakLeak(xs [][]int) int {
search:
	for _, row := range xs { // want `c.mu is held on some paths but not others`
		for _, v := range row {
			c.mu.Lock()
			if v == 0 {
				break search
			}
			c.mu.Unlock()
		}
	}
	return 0
}

// A defer registered on only one branch covers only that branch; the
// old walk believed whichever branch it merged first.
func (c *counter) condDefer(b bool) {
	c.mu.Lock() // want `c.mu locked here but not released on the fall-through path`
	if b {
		defer c.mu.Unlock()
	}
	c.n++
}
