// Package lockdiscipline checks mutex hygiene in the guardian/object
// and log layers.
//
// The recovery system is "assumed to be called sequentially" by the
// thesis (§2.3), but the implementation is concurrent: guardians,
// objects, the stable log, and housekeeping all share mutexes, and the
// crash matrix cannot exercise lock bugs (it crashes nodes, not
// schedules). Four rules keep the locking auditable:
//
//  1. Release discipline. Every Lock/RLock must be released on every
//     path: either by an immediately dominating defer Unlock, or by
//     explicit Unlocks that a conservative walk of the enclosing
//     statement tree can see on each branch. Returning (or falling off
//     the function) while holding the lock is flagged.
//
//  2. Self-deadlock. While a mutex is held, calling a method on the
//     same receiver that acquires the same mutex field deadlocks
//     (sync.Mutex is not reentrant). The analyzer builds a per-package
//     "acquires" table of methods that lock their receiver's mutex
//     fields and flags held-lock calls to them.
//
//  3. Raw device I/O under the log mutex. In package stablelog, code
//     holding a mutex must not call stable.Device methods directly:
//     all I/O goes through stable.Store, whose own mutex serializes
//     the two-copy protocol. A direct device call under the log lock
//     bypasses the pairing invariant (one copy good at all times) and
//     freezes the lock hierarchy Log → Store → Device.
//
//  4. Force waits under a lock. In the guardian and writer packages,
//     code holding a mutex must not call a stablelog.Log force method
//     (Force, ForceWrite, ForceTo) or a core.RecoverySystem operation:
//     outcome forces are the commit path's only device waits, and group
//     commit amortizes them only if independent actions can reach the
//     force scheduler concurrently. A force wait under the guardian
//     table lock or a writer mutex re-serializes every action behind
//     one device write — the exact contention the scheduler exists to
//     remove. Appending (Log.Write) under a writer mutex is fine; the
//     await must happen after the unlock.
//
// Intentional departures (lock handoff, conditionally held locks)
// carry //roslint:lockorder with a justification.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "lockdiscipline",
	Doc:       "mutexes: release on every path, no reentrant self-calls, no raw device I/O under the log lock",
	Directive: "lockorder",
	Run:       run,
}

const stablePath = "repro/internal/stable"

// LogPackages are the packages rule 3 applies to: code in them must not
// perform raw stable.Device I/O while holding a mutex. A map so the
// analyzer's tests can put their testdata package in scope.
var LogPackages = map[string]bool{
	"repro/internal/stablelog": true,
}

const (
	stablelogPath = "repro/internal/stablelog"
	corePath      = "repro/internal/core"
)

// ForcePathPackages are the packages rule 4 applies to: code in them
// must not wait on a log force (or enter a recovery-system operation,
// which forces internally) while holding any mutex, or group commit
// degenerates to serial commits. A map so the analyzer's tests can put
// their testdata package in scope.
var ForcePathPackages = map[string]bool{
	"repro/internal/guardian":  true,
	"repro/internal/simplelog": true,
	"repro/internal/hybridlog": true,
}

// forceMethods are the (*stablelog.Log) methods that block on device
// forces.
var forceMethods = map[string]bool{
	"Force":      true,
	"ForceWrite": true,
	"ForceTo":    true,
}

// rsMethods are the core.RecoverySystem operations; every one of them
// may append and force outcome entries.
var rsMethods = map[string]bool{
	"Prepare":    true,
	"Commit":     true,
	"Abort":      true,
	"Committing": true,
	"Done":       true,
	"WriteEntry": true,
	"Housekeep":  true,
}

// lockState tracks one held mutex inside a function walk.
type lockState struct {
	key      string       // canonical owner chain + field, e.g. "a.g.mu"
	root     types.Object // root object of the chain (variable `a`)
	field    types.Object // the mutex field (or package-level var)
	chain    string       // owner chain without the mutex field, e.g. "a.g"
	read     bool         // RLock (released by RUnlock)
	deferred bool         // a defer covers the release
	pos      ast.Node     // the Lock call, for reporting
}

type checker struct {
	pass *analysis.Pass
	// acquires maps a method (*types.Func) to the mutex field objects
	// it locks on its own receiver.
	acquires map[*types.Func][]types.Object
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, acquires: map[*types.Func][]types.Object{}}
	// Pass 1: which methods acquire which receiver mutex fields?
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if kind, st := c.lockCall(call); kind == "Lock" || kind == "RLock" {
					if st != nil && st.field != nil {
						c.acquires[obj] = append(c.acquires[obj], st.field)
					}
				}
				return true
			})
		}
	}
	// Pass 2: walk every function body.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkBody(fn.Body)
		}
	}
	return nil
}

// checkBody analyzes one function (or function literal) body.
func (c *checker) checkBody(body *ast.BlockStmt) {
	held := map[string]*lockState{}
	if c.scan(body.List, held) {
		// Every path returns or loops forever; there is no fall-through.
		return
	}
	for _, st := range held {
		if !st.deferred {
			c.pass.Reportf(st.pos.Pos(),
				"%s locked here but not released on the fall-through path (add defer %s, or justify a handoff with //roslint:lockorder)",
				st.key, unlockName(st))
		}
	}
}

func unlockName(st *lockState) string {
	if st.read {
		return st.key + ".RUnlock()"
	}
	return st.key + ".Unlock()"
}

// scan walks a statement list updating held in place. It returns true
// if the list terminates (every path returns/branches out).
func (c *checker) scan(stmts []ast.Stmt, held map[string]*lockState) bool {
	for _, stmt := range stmts {
		if c.scanStmt(stmt, held) {
			return true
		}
	}
	return false
}

// scanStmt processes one statement; true means control does not fall
// through.
func (c *checker) scanStmt(stmt ast.Stmt, held map[string]*lockState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.scanExpr(s.X, held)

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, held)
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.scanExpr(e, held)
					}
				}
			}
		}

	case *ast.DeferStmt:
		if kind, st := c.lockCall(s.Call); kind == "Unlock" || kind == "RUnlock" {
			if h, ok := held[st.key]; ok && h.read == (kind == "RUnlock") {
				h.deferred = true
			}
		} else {
			c.scanCalls(s.Call, held)
		}

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, held)
		}
		for _, st := range held {
			if !st.deferred {
				c.pass.Reportf(s.Pos(),
					"return while holding %s with no defer on this path (unlock first, or justify with //roslint:lockorder)",
					st.key)
			}
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto: the lock may be released after the loop;
		// treat as a path end without a verdict.
		return true

	case *ast.BlockStmt:
		return c.scan(s.List, held)

	case *ast.LabeledStmt:
		return c.scanStmt(s.Stmt, held)

	case *ast.IfStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, held)
		}
		c.scanExpr(s.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := c.scan(s.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.scanStmt(s.Else, elseHeld)
		}
		return c.merge(s, held, thenHeld, thenTerm, elseHeld, elseTerm)

	case *ast.ForStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held)
		}
		bodyHeld := copyHeld(held)
		c.scan(s.Body.List, bodyHeld)
		// A lock whose state differs between loop entry and iteration
		// end would double-lock or double-unlock on the next pass.
		c.compareLoop(s, held, bodyHeld)
		// `for { ... }` with no break never falls through (the wait
		// loops in internal/object exit only by returning).
		if s.Cond == nil && !hasBreak(s.Body) {
			return true
		}

	case *ast.RangeStmt:
		c.scanExpr(s.X, held)
		bodyHeld := copyHeld(held)
		c.scan(s.Body.List, bodyHeld)
		c.compareLoop(s, held, bodyHeld)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.scanBranches(stmt, held)

	case *ast.GoStmt:
		c.scanCalls(s.Call, held)
	}
	return false
}

// scanBranches handles switch/select: each clause is a branch from the
// same entry state; fall-through clauses must agree.
func (c *checker) scanBranches(stmt ast.Stmt, held map[string]*lockState) bool {
	var body *ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	type out struct {
		held map[string]*lockState
		term bool
	}
	var outs []out
	hasDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm == nil {
				hasDefault = true
			}
		}
		h := copyHeld(held)
		term := c.scan(stmts, h)
		outs = append(outs, out{h, term})
	}
	_, isSelect := stmt.(*ast.SelectStmt)
	exhaustive := hasDefault || (isSelect && len(outs) > 0)
	// Merge the fall-through branches; without a default the entry
	// state itself falls through too.
	var fall []map[string]*lockState
	if !exhaustive {
		fall = append(fall, copyHeld(held))
	}
	allTerm := exhaustive
	for _, o := range outs {
		if !o.term {
			fall = append(fall, o.held)
		}
		allTerm = allTerm && o.term
	}
	if allTerm && len(fall) == 0 {
		return true
	}
	c.mergeInto(stmt, held, fall)
	return false
}

// merge reconciles the two branches of an if.
func (c *checker) merge(at ast.Node, held map[string]*lockState, thenHeld map[string]*lockState, thenTerm bool, elseHeld map[string]*lockState, elseTerm bool) bool {
	var fall []map[string]*lockState
	if !thenTerm {
		fall = append(fall, thenHeld)
	}
	if !elseTerm {
		fall = append(fall, elseHeld)
	}
	if len(fall) == 0 {
		return true
	}
	c.mergeInto(at, held, fall)
	return false
}

// hasBreak reports whether body contains a break binding to the
// enclosing loop (not one captured by a nested loop, switch, or
// select, and not inside a function literal).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			_ = s
			return false
		}
		return true
	}
	for _, stmt := range body.List {
		ast.Inspect(stmt, walk)
	}
	return found
}

// mergeInto writes the merged fall-through state into held, reporting
// branches that disagree about a lock.
func (c *checker) mergeInto(at ast.Node, held map[string]*lockState, fall []map[string]*lockState) {
	keys := map[string]bool{}
	for _, h := range fall {
		for k := range h {
			keys[k] = true
		}
	}
	for k := range held {
		delete(held, k)
	}
	for k := range keys {
		inAll := true
		var st *lockState
		for _, h := range fall {
			if s, ok := h[k]; ok {
				if st == nil {
					st = s
				}
			} else {
				inAll = false
			}
		}
		if inAll {
			held[k] = st
		} else {
			c.pass.Reportf(at.Pos(),
				"%s is held on some paths but not others after this statement (unlock consistently, or justify with //roslint:lockorder)", k)
		}
	}
}

// compareLoop reports locks whose held-state at the end of a loop body
// differs from loop entry.
func (c *checker) compareLoop(at ast.Node, entry, exit map[string]*lockState) {
	for k := range entry {
		if _, ok := exit[k]; !ok {
			c.pass.Reportf(at.Pos(),
				"%s is released inside this loop but held on entry; the next iteration would unlock an unlocked mutex or deadlock", k)
		}
	}
	for k, st := range exit {
		if _, ok := entry[k]; !ok && !st.deferred {
			c.pass.Reportf(st.pos.Pos(),
				"%s locked inside a loop but still held at the end of the iteration", k)
		}
	}
}

// scanExpr looks inside an expression for lock transitions, held-lock
// self-calls, and raw device I/O; function literals are analyzed as
// separate bodies.
func (c *checker) scanExpr(expr ast.Expr, held map[string]*lockState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkBody(lit.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, st := c.lockCall(call)
		switch kind {
		case "Lock", "RLock":
			if _, ok := held[st.key]; ok {
				c.pass.Reportf(call.Pos(), "%s locked while already held: self-deadlock (sync mutexes are not reentrant)", st.key)
			}
			st.read = kind == "RLock"
			st.pos = call
			held[st.key] = st
		case "Unlock", "RUnlock":
			delete(held, st.key)
		default:
			c.checkHeldCall(call, held)
		}
		return true
	})
}

// scanCalls applies held-call checks to a call used in go/defer.
func (c *checker) scanCalls(call *ast.CallExpr, held map[string]*lockState) {
	c.checkHeldCall(call, held)
	for _, arg := range call.Args {
		c.scanExpr(arg, held)
	}
}

// checkHeldCall reports self-deadlocks and raw device I/O made while a
// lock is held.
func (c *checker) checkHeldCall(call *ast.CallExpr, held map[string]*lockState) {
	if len(held) == 0 {
		return
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	// Rule 2: method on the same chain that acquires a held mutex field.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		chain, _, ok := c.chainOf(sel.X)
		if ok {
			for _, field := range c.acquires[fn] {
				for _, st := range held {
					if st.field == field && st.chain == chain {
						c.pass.Reportf(call.Pos(),
							"%s() acquires %s which is already held here: self-deadlock", fn.Name(), st.key)
					}
				}
			}
		}
	}
	// Rule 3: raw device I/O under a lock in the log packages.
	if LogPackages[c.pass.Pkg.Path()] && analysis.IsMethodOf(fn, stablePath, "Device") {
		for range held {
			c.pass.Reportf(call.Pos(),
				"raw stable.Device.%s under a held mutex; the log must do I/O through stable.Store (lock order Log → Store → Device)", fn.Name())
			break
		}
	}
	// Rule 4: force waits (or recovery-system operations, which force
	// internally) under a lock in the guardian/writer packages.
	if ForcePathPackages[c.pass.Pkg.Path()] {
		blocked := (forceMethods[fn.Name()] && analysis.IsMethodOf(fn, stablelogPath, "Log")) ||
			(rsMethods[fn.Name()] && analysis.IsMethodOf(fn, corePath, "RecoverySystem"))
		if blocked {
			for _, st := range held {
				c.pass.Reportf(call.Pos(),
					"%s() waits on a log force while %s is held; release the lock before awaiting durability or concurrent commits serialize (group commit, thesis §4.1)",
					fn.Name(), st.key)
				break
			}
		}
	}
}

// lockCall classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns the canonical lock state.
func (c *checker) lockCall(call *ast.CallExpr) (string, *lockState) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	recv := analysis.ReceiverNamed(fn.Type().(*types.Signature).Recv().Type())
	if recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return "", nil
	}
	chain, root, ok := c.chainOf(sel.X)
	if !ok {
		return "", nil
	}
	st := &lockState{key: chain, root: root}
	// Split the chain: the mutex field is the last selector component.
	if s, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		st.field = c.pass.TypesInfo.Uses[s.Sel]
		ownerChain, _, ok := c.chainOf(s.X)
		if ok {
			st.chain = ownerChain
		}
	} else if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		// Package-level or local mutex variable.
		st.field = c.pass.TypesInfo.Uses[id]
	}
	return name, st
}

// chainOf canonicalizes a selector chain (a.g.mu) into a string keyed
// by the root object's identity; non-trivial expressions (calls,
// indexes) are rejected.
func (c *checker) chainOf(e ast.Expr) (string, types.Object, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[x]
		}
		if obj == nil {
			return "", nil, false
		}
		return x.Name, obj, true
	case *ast.SelectorExpr:
		prefix, root, ok := c.chainOf(x.X)
		if !ok {
			return "", nil, false
		}
		return prefix + "." + x.Sel.Name, root, true
	}
	return "", nil, false
}

func copyHeld(held map[string]*lockState) map[string]*lockState {
	out := make(map[string]*lockState, len(held))
	for k, v := range held {
		cp := *v
		out[k] = &cp
	}
	return out
}
