// Package lockdiscipline checks mutex hygiene in the guardian/object
// and log layers.
//
// The recovery system is "assumed to be called sequentially" by the
// thesis (§2.3), but the implementation is concurrent: guardians,
// objects, the stable log, and housekeeping all share mutexes, and the
// crash matrix cannot exercise lock bugs (it crashes nodes, not
// schedules). Four rules keep the locking auditable:
//
//  1. Release discipline. Every Lock/RLock must be released on every
//     path: either by a defer Unlock executed on the path, or by
//     explicit Unlocks. The check is a forward must-analysis over the
//     function's control-flow graph (internal/analysis/cfg): the held
//     set is propagated to a fixpoint along every edge — if/else arms,
//     loop back edges, labeled break/continue, goto, switch
//     fallthrough, select clauses — and a return (or the implicit one)
//     reached with an uncovered lock, or a join whose incoming paths
//     disagree about a lock, is flagged. (The PR 2 version walked the
//     statement tree and gave up at any break/continue/goto.)
//
//  2. Self-deadlock. While a mutex is held, calling a method on the
//     same receiver that acquires the same mutex field deadlocks
//     (sync.Mutex is not reentrant). The analyzer builds a per-package
//     "acquires" table of methods that lock their receiver's mutex
//     fields and flags held-lock calls to them.
//
//  3. Raw device I/O under the log mutex. In package stablelog, code
//     holding a mutex must not call stable.Device methods directly:
//     all I/O goes through stable.Store, whose own mutex serializes
//     the two-copy protocol. A direct device call under the log lock
//     bypasses the pairing invariant (one copy good at all times) and
//     freezes the lock hierarchy Log → Store → Device.
//
//  4. Force waits under a lock. In the guardian and writer packages,
//     code holding a mutex must not call a stablelog.Log force method
//     (Force, ForceWrite, ForceTo) or a core.RecoverySystem operation:
//     outcome forces are the commit path's only device waits, and group
//     commit amortizes them only if independent actions can reach the
//     force scheduler concurrently. A force wait under the guardian
//     table lock or a writer mutex re-serializes every action behind
//     one device write — the exact contention the scheduler exists to
//     remove. Appending (Log.Write) under a writer mutex is fine; the
//     await must happen after the unlock. Rules 2–4 consult the same
//     per-point held sets the flow analysis computes, so a lock
//     released on one branch no longer taints calls on the other.
//
//  5. Index mutation confinement. In the guardian package, the
//     live-version index (objindex.Index) may be mutated — Install,
//     ReplaceBindings, Rebuild — only inside the two installers:
//     installCommitted (the commit path, running after the point of no
//     return with the action's write locks still held) and rebuildIndex
//     (recovery, before the guardian serves). A mutation anywhere else
//     could publish an uncommitted version or race a concurrent
//     committer, exactly the bugs the index's consistency contract
//     (DESIGN.md "Object index") rules out. Unlike rules 2–4 this is
//     confinement by function, not by held set: the installers are the
//     audited lock-correct sites, so the analyzer pins mutations to
//     them by name.
//
// Intentional departures (lock handoff, conditionally held locks)
// carry //roslint:lockorder with a justification.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "lockdiscipline",
	Doc:       "mutexes: release on every path, no reentrant self-calls, no raw device I/O under the log lock",
	Directive: "lockorder",
	Run:       run,
}

const stablePath = "repro/internal/stable"

// LogPackages are the packages rule 3 applies to: code in them must not
// perform raw stable.Device I/O while holding a mutex. A map so the
// analyzer's tests can put their testdata package in scope.
var LogPackages = map[string]bool{
	"repro/internal/stablelog": true,
}

const (
	stablelogPath = "repro/internal/stablelog"
	corePath      = "repro/internal/core"
)

// ForcePathPackages are the packages rule 4 applies to: code in them
// must not wait on a log force (or enter a recovery-system operation,
// which forces internally) while holding any mutex, or group commit
// degenerates to serial commits. A map so the analyzer's tests can put
// their testdata package in scope.
var ForcePathPackages = map[string]bool{
	"repro/internal/guardian":  true,
	"repro/internal/simplelog": true,
	"repro/internal/hybridlog": true,
}

const objindexPath = "repro/internal/objindex"

// IndexPackages are the packages rule 5 applies to: code in them may
// mutate a live-version index only from the named installers. A map so
// the analyzer's tests can put their testdata package in scope.
var IndexPackages = map[string]bool{
	"repro/internal/guardian": true,
}

// indexMutators are the (*objindex.Index) methods that publish,
// replace, or rebuild entries; read-side methods (Get, Bound,
// Snapshot, Stats) are unrestricted.
var indexMutators = map[string]bool{
	"Install":         true,
	"ReplaceBindings": true,
	"Rebuild":         true,
}

// indexInstallers are the functions rule 5 allows to mutate the index:
// the commit-path installer and the recovery rebuilder.
var indexInstallers = map[string]bool{
	"installCommitted": true,
	"rebuildIndex":     true,
}

// forceMethods are the (*stablelog.Log) methods that block on device
// forces.
var forceMethods = map[string]bool{
	"Force":      true,
	"ForceWrite": true,
	"ForceTo":    true,
}

// rsMethods are the core.RecoverySystem operations; every one of them
// may append and force outcome entries.
var rsMethods = map[string]bool{
	"Prepare":    true,
	"Commit":     true,
	"Abort":      true,
	"Committing": true,
	"Done":       true,
	"WriteEntry": true,
	"Housekeep":  true,
}

// lockState tracks one held mutex.
type lockState struct {
	key      string       // canonical owner chain + field, e.g. "a.g.mu"
	root     types.Object // root object of the chain (variable `a`)
	field    types.Object // the mutex field (or package-level var)
	chain    string       // owner chain without the mutex field, e.g. "a.g"
	read     bool         // RLock (released by RUnlock)
	deferred bool         // a defer covers the release
	pos      ast.Node     // the Lock call, for reporting
}

// held is the dataflow fact: the set of locks held at a program point,
// keyed by canonical chain. Treated immutably by the solver.
type held map[string]*lockState

type checker struct {
	pass *analysis.Pass
	// acquires maps a method (*types.Func) to the mutex field objects
	// it locks on its own receiver.
	acquires map[*types.Func][]types.Object
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, acquires: map[*types.Func][]types.Object{}}
	// Pass 1: which methods acquire which receiver mutex fields?
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if kind, st := c.lockCall(call); kind == "Lock" || kind == "RLock" {
					if st != nil && st.field != nil {
						c.acquires[obj] = append(c.acquires[obj], st.field)
					}
				}
				return true
			})
		}
	}
	// Pass 2: flow analysis over every function body. Function
	// literals are separate bodies with their own graphs (a lock held
	// by the enclosing function at the literal's creation is not
	// necessarily held when the literal runs).
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkBody(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkBody(lit.Body)
				}
				return true
			})
		}
	}
	// Pass 3 (rule 5): index mutations confined to the installers. The
	// scan covers each declaration's whole body, function literals
	// included — a literal defined inside an installer inherits its
	// permission, one defined elsewhere does not.
	if IndexPackages[pass.Pkg.Path()] {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || indexInstallers[fn.Name.Name] {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := analysis.CalleeFunc(pass.TypesInfo, call)
					if callee != nil && indexMutators[callee.Name()] && analysis.IsMethodOf(callee, objindexPath, "Index") {
						pass.Reportf(call.Pos(),
							"objindex.Index.%s() outside the installers (installCommitted, rebuildIndex): index mutations must stay on the committed side of the point of no return, under the owning action's locks (or justify with //roslint:lockorder)",
							callee.Name())
					}
					return true
				})
			}
		}
	}
	return nil
}

// checkBody runs the held-set must-analysis over one function body and
// reports rule violations from the solved facts.
func (c *checker) checkBody(body *ast.BlockStmt) {
	g := c.pass.CFG(body)
	res := cfg.Solve(g, cfg.Analysis[held]{
		Dir:      cfg.Forward,
		Boundary: held{},
		Transfer: func(b *cfg.Block, in held) held {
			out := copyHeld(in)
			for _, n := range b.Nodes {
				c.applyNode(n, out, false)
			}
			return out
		},
		Meet:  meetHeld,
		Equal: equalHeld,
	})
	dom := g.Dominators()

	// Replay each reachable block once with reporting on: rules 2–4
	// fire against the per-point held set, returns against what is
	// still uncovered, double-locks against what is already held.
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		h := copyHeld(in)
		for _, n := range b.Nodes {
			c.applyNode(n, h, true)
		}
		if b == g.FallBlock {
			for _, st := range sortedStates(h) {
				if !st.deferred {
					c.pass.Reportf(st.pos.Pos(),
						"%s locked here but not released on the fall-through path (add defer %s, or justify a handoff with //roslint:lockorder)",
						st.key, unlockName(st))
				}
			}
		}
	}

	// Join-point audit: paths that disagree about a lock. For loop
	// headers the disagreement is between loop entry and the back
	// edge; for ordinary joins, between the branch arms.
	for _, b := range g.Blocks {
		if _, ok := res.In[b]; !ok || b == g.Exit {
			continue
		}
		var livePreds []*cfg.Block
		for _, p := range b.Preds {
			if _, ok := res.Out[p]; ok {
				livePreds = append(livePreds, p)
			}
		}
		if len(livePreds) < 2 {
			continue
		}
		keys := map[string]bool{}
		for _, p := range livePreds {
			for k := range res.Out[p] {
				keys[k] = true
			}
		}
		for _, k := range sortedKeys(keys) {
			if b.LoopHead {
				c.reportLoopJoin(b, dom, res, livePreds, k)
			} else {
				c.reportJoin(b, res, livePreds, k)
			}
		}
	}
}

// reportJoin flags key if the incoming paths of an ordinary join
// disagree about it.
func (c *checker) reportJoin(b *cfg.Block, res *cfg.Result[held], preds []*cfg.Block, key string) {
	n := 0
	for _, p := range preds {
		if _, ok := res.Out[p][key]; ok {
			n++
		}
	}
	if n == 0 || n == len(preds) {
		return
	}
	c.pass.Reportf(joinPos(b),
		"%s is held on some paths but not others after this statement (unlock consistently, or justify with //roslint:lockorder)", key)
}

// reportLoopJoin flags key when its held-state differs between loop
// entry and the end of an iteration: the next pass would double-lock
// or double-unlock.
func (c *checker) reportLoopJoin(b *cfg.Block, dom *cfg.Dom, res *cfg.Result[held], preds []*cfg.Block, key string) {
	var entryHas, entryMiss, backHas, backMiss int
	var backState *lockState
	for _, p := range preds {
		st, ok := res.Out[p][key]
		if dom.Dominates(b, p) { // back edge
			if ok {
				backHas++
				backState = st
			} else {
				backMiss++
			}
		} else {
			if ok {
				entryHas++
			} else {
				entryMiss++
			}
		}
	}
	switch {
	case entryHas > 0 && entryMiss == 0 && backHas == 0 && backMiss > 0:
		c.pass.Reportf(joinPos(b),
			"%s is released inside this loop but held on entry; the next iteration would unlock an unlocked mutex or deadlock", key)
	case entryHas == 0 && backHas > 0 && !backState.deferred:
		c.pass.Reportf(backState.pos.Pos(),
			"%s locked inside a loop but still held at the end of the iteration", key)
	case entryHas > 0 && entryMiss > 0, backHas > 0 && backMiss > 0:
		c.pass.Reportf(joinPos(b),
			"%s is held on some paths but not others after this statement (unlock consistently, or justify with //roslint:lockorder)", key)
	}
}

// joinPos positions a join report: the originating statement when the
// builder recorded one, else the block's first node.
func joinPos(b *cfg.Block) token.Pos {
	if b.Stmt != nil {
		return b.Stmt.Pos()
	}
	if len(b.Nodes) > 0 {
		return b.Nodes[0].Pos()
	}
	return token.NoPos
}

// applyNode advances the held set across one CFG node. With report
// set, rule violations are emitted (the solver calls it silently; the
// post-fixpoint replay reports).
func (c *checker) applyNode(n ast.Node, h held, report bool) {
	switch s := n.(type) {
	case *ast.DeferStmt:
		if kind, st := c.lockCall(s.Call); kind == "Unlock" || kind == "RUnlock" {
			if cur, ok := h[st.key]; ok && cur.read == (kind == "RUnlock") {
				cur.deferred = true
			}
			return
		}
		if report {
			c.checkHeldCall(s.Call, h)
		}
		for _, arg := range s.Call.Args {
			c.applyExpr(arg, h, report)
		}

	case *ast.GoStmt:
		// The call runs on another goroutine with its own schedule;
		// only the argument evaluation happens under the current held
		// set.
		if report {
			c.checkHeldCall(s.Call, h)
		}
		for _, arg := range s.Call.Args {
			c.applyExpr(arg, h, report)
		}

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.applyExpr(e, h, report)
		}
		if report {
			for _, st := range sortedStates(h) {
				if !st.deferred {
					c.pass.Reportf(s.Pos(),
						"return while holding %s with no defer on this path (unlock first, or justify with //roslint:lockorder)",
						st.key)
				}
			}
		}

	default:
		c.applyExpr(n, h, report)
	}
}

// applyExpr scans a node subtree (statement or expression) for lock
// transitions and held-call violations, in syntactic order; function
// literals are opaque (they have their own graphs).
func (c *checker) applyExpr(n ast.Node, h held, report bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, st := c.lockCall(call)
		switch kind {
		case "Lock", "RLock":
			if _, dup := h[st.key]; dup {
				if report {
					c.pass.Reportf(call.Pos(), "%s locked while already held: self-deadlock (sync mutexes are not reentrant)", st.key)
				}
			}
			st.read = kind == "RLock"
			st.pos = call
			h[st.key] = st
		case "Unlock", "RUnlock":
			delete(h, st.key)
		default:
			if report {
				c.checkHeldCall(call, h)
			}
		}
		return true
	})
}

// checkHeldCall reports self-deadlocks and raw device I/O made while a
// lock is held.
func (c *checker) checkHeldCall(call *ast.CallExpr, h held) {
	if len(h) == 0 {
		return
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	// Rule 2: method on the same chain that acquires a held mutex field.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		chain, _, ok := c.chainOf(sel.X)
		if ok {
			for _, field := range c.acquires[fn] {
				for _, st := range sortedStates(h) {
					if st.field == field && st.chain == chain {
						c.pass.Reportf(call.Pos(),
							"%s() acquires %s which is already held here: self-deadlock", fn.Name(), st.key)
					}
				}
			}
		}
	}
	// Rule 3: raw device I/O under a lock in the log packages.
	if LogPackages[c.pass.Pkg.Path()] && analysis.IsMethodOf(fn, stablePath, "Device") {
		c.pass.Reportf(call.Pos(),
			"raw stable.Device.%s under a held mutex; the log must do I/O through stable.Store (lock order Log → Store → Device)", fn.Name())
	}
	// Rule 4: force waits (or recovery-system operations, which force
	// internally) under a lock in the guardian/writer packages.
	if ForcePathPackages[c.pass.Pkg.Path()] {
		blocked := (forceMethods[fn.Name()] && analysis.IsMethodOf(fn, stablelogPath, "Log")) ||
			(rsMethods[fn.Name()] && analysis.IsMethodOf(fn, corePath, "RecoverySystem"))
		if blocked {
			for _, st := range sortedStates(h) {
				c.pass.Reportf(call.Pos(),
					"%s() waits on a log force while %s is held; release the lock before awaiting durability or concurrent commits serialize (group commit, thesis §4.1)",
					fn.Name(), st.key)
				break
			}
		}
	}
}

func unlockName(st *lockState) string {
	if st.read {
		return st.key + ".RUnlock()"
	}
	return st.key + ".Unlock()"
}

// lockCall classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns the canonical lock state.
func (c *checker) lockCall(call *ast.CallExpr) (string, *lockState) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	recv := analysis.ReceiverNamed(fn.Type().(*types.Signature).Recv().Type())
	if recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return "", nil
	}
	chain, root, ok := c.chainOf(sel.X)
	if !ok {
		return "", nil
	}
	st := &lockState{key: chain, root: root}
	// Split the chain: the mutex field is the last selector component.
	if s, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		st.field = c.pass.TypesInfo.Uses[s.Sel]
		ownerChain, _, ok := c.chainOf(s.X)
		if ok {
			st.chain = ownerChain
		}
	} else if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		// Package-level or local mutex variable.
		st.field = c.pass.TypesInfo.Uses[id]
	}
	return name, st
}

// chainOf canonicalizes a selector chain (a.g.mu) into a string keyed
// by the root object's identity; non-trivial expressions (calls,
// indexes) are rejected.
func (c *checker) chainOf(e ast.Expr) (string, types.Object, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[x]
		}
		if obj == nil {
			return "", nil, false
		}
		return x.Name, obj, true
	case *ast.SelectorExpr:
		prefix, root, ok := c.chainOf(x.X)
		if !ok {
			return "", nil, false
		}
		return prefix + "." + x.Sel.Name, root, true
	}
	return "", nil, false
}

func copyHeld(h held) held {
	out := make(held, len(h))
	for k, v := range h {
		cp := *v
		out[k] = &cp
	}
	return out
}

// meetHeld intersects two held sets (must-analysis): a lock counts as
// held at a join only when every incoming path holds it, and as
// defer-covered only when every path covers it.
func meetHeld(a, b held) held {
	out := held{}
	for k, sa := range a {
		if sb, ok := b[k]; ok {
			cp := *sa
			cp.deferred = sa.deferred && sb.deferred
			out[k] = &cp
		}
	}
	return out
}

func equalHeld(a, b held) bool {
	if len(a) != len(b) {
		return false
	}
	for k, sa := range a {
		sb, ok := b[k]
		if !ok || sa.read != sb.read || sa.deferred != sb.deferred {
			return false
		}
	}
	return true
}

func sortedStates(h held) []*lockState {
	out := make([]*lockState, 0, len(h))
	for _, st := range h {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
