// Package analysistest runs an analyzer over testdata packages and
// checks its findings against "// want" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repository's own
// loader.
//
// A test package lives in testdata/src/<name>/ next to the analyzer's
// test. Lines expected to be flagged carry a comment of the form
//
//	x() // want `regexp`
//
// with one quoted Go string (backquoted or double-quoted) per expected
// diagnostic on that line. Every diagnostic must match a want on its
// line and every want must be matched — so each testdata package proves
// both the true positives and the exemptions (a //roslint:-annotated
// line with no want demonstrates suppression).
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one "// want" entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
	raw  string
}

// Run loads the testdata/src/<pkg> packages (resolved relative to the
// calling test's directory) in one batched Load — a single `go list
// -export` subprocess for the whole suite — applies the analyzer, and
// reports mismatches against the packages' want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	_, callerFile, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	dir := filepath.Dir(callerFile)
	patterns := make([]string, len(pkgs))
	for i, name := range pkgs {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join("testdata", "src", name))
	}
	loaded, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	for _, pkg := range loaded {
		wants := collectWants(t, pkg)
		diags, err := analysis.RunPass(a, pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(wants, pos, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
			}
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.hit || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses the "// want" comments of every file in pkg.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for rest := strings.TrimSpace(text); rest != ""; rest = strings.TrimSpace(rest) {
					quoted, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q", pos, c.Text)
					}
					pat, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s: unquoting %q: %v", pos, quoted, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  quoted,
					})
					rest = rest[len(quoted):]
				}
			}
		}
	}
	return wants
}
