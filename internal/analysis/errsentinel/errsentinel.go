// Package errsentinel flags sentinel-error comparisons that break under
// wrapping.
//
// The repository's sentinels are routinely wrapped: stable.ErrDataLoss
// itself wraps stable.ErrBadBlock, and every layer adds context with
// %w (fmt.Errorf("stable: page %d: %w", ...)). Comparing such errors
// with == or a type assertion silently stops matching the moment a
// wrap is added in one cold path — exactly the class of "everyone
// knows" recovery bug the suite exists to prevent. errors.Is and
// errors.As follow the Unwrap chain and are the only comparisons that
// stay correct.
//
// Flagged:
//
//   - err == ErrSentinel / err != ErrSentinel where one operand is a
//     package-level error variable (nil comparisons are fine),
//   - x.(SomeErrorType) type assertions and type switches on a value of
//     type error.
//
// The rare site that must compare identity exactly (e.g. a test of the
// sentinel's own identity) carries //roslint:exacterr.
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errsentinel analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "errsentinel",
	Doc:       "compare wrapped sentinel errors with errors.Is/errors.As, not == or type assertions",
	Directive: "exacterr",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, node)
			case *ast.TypeAssertExpr:
				checkAssert(pass, node)
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkCompare flags ==/!= between an error value and a package-level
// error sentinel.
func checkCompare(pass *analysis.Pass, expr *ast.BinaryExpr) {
	if expr.Op != token.EQL && expr.Op != token.NEQ {
		return
	}
	xErr, yErr := isError(pass, expr.X), isError(pass, expr.Y)
	if !xErr && !yErr {
		return
	}
	var sentinel types.Object
	if s := sentinelOf(pass, expr.X); s != nil {
		sentinel = s
	} else if s := sentinelOf(pass, expr.Y); s != nil {
		sentinel = s
	}
	if sentinel == nil {
		return
	}
	fix := "errors.Is"
	if expr.Op == token.NEQ {
		fix = "!errors.Is"
	}
	pass.Reportf(expr.Pos(),
		"%s compared with %s; sentinels are wrapped (%%w), use %s(err, %s)",
		sentinel.Name(), expr.Op, fix, sentinel.Name())
}

// sentinelOf returns the package-level error variable an expression
// names, or nil.
func sentinelOf(pass *analysis.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package level: declared directly in the package scope.
	if v.Pkg().Scope().Lookup(v.Name()) != v {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isError(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType)
}

// checkAssert flags err.(SomeType) on an error operand.
func checkAssert(pass *analysis.Pass, assert *ast.TypeAssertExpr) {
	if assert.Type == nil { // type switch guard; handled separately
		return
	}
	if !isError(pass, assert.X) {
		return
	}
	pass.Reportf(assert.Pos(),
		"type assertion on an error; wrapped errors will not match — use errors.As")
}

// checkTypeSwitch flags `switch err.(type)` on an error operand.
func checkTypeSwitch(pass *analysis.Pass, sw *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	}
	if x == nil || !isError(pass, x) {
		return
	}
	pass.Reportf(sw.Pos(),
		"type switch on an error; wrapped errors will not match — use errors.As")
}
