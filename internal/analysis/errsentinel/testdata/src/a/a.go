// Package a exercises errsentinel: == / != against package-level error
// sentinels and type assertions on errors are flagged; errors.Is,
// errors.As, nil checks, and justified identity tests are not.
package a

import (
	"errors"

	"repro/internal/replog"
	"repro/internal/stable"
	"repro/internal/transport"
	"repro/internal/wire"
)

var errLocal = errors.New("local sentinel")

func eq(err error) bool {
	return err == stable.ErrDataLoss // want `ErrDataLoss compared with ==`
}

func neq(err error) bool {
	return err != errLocal // want `errLocal compared with !=`
}

// The wire sentinels are wrapped by every layer above them (the frame
// reader, the client, the transport): identity comparison breaks.
func wireEq(err error) bool {
	return err == wire.ErrBadCRC // want `ErrBadCRC compared with ==`
}

func wireIs(err error) bool {
	return errors.Is(err, wire.ErrRemote)
}

// The replication sentinels surface through the force path wrapped in
// commit-failure context; a writer branching on them with == would
// misread a lost quorum as an ordinary abort.
func quorumEq(err error) bool {
	return err == replog.ErrQuorumLost // want `ErrQuorumLost compared with ==`
}

func staleNeq(err error) bool {
	return err != replog.ErrStaleReplica // want `ErrStaleReplica compared with !=`
}

func quorumIs(err error) bool {
	return errors.Is(err, replog.ErrQuorumLost)
}

// The routing sentinels arrive wrapped by the routed client (with the
// shard id and retry context); a caller distinguishing "key moved"
// from "node dead" with == would misclassify every real occurrence.
func wrongShardEq(err error) bool {
	return err == transport.ErrWrongShard // want `ErrWrongShard compared with ==`
}

func staleRouteNeq(err error) bool {
	return err != transport.ErrStaleRoute // want `ErrStaleRoute compared with !=`
}

func wrongShardIs(err error) bool {
	return errors.Is(err, transport.ErrWrongShard)
}

func staleRouteIs(err error) bool {
	return errors.Is(err, transport.ErrStaleRoute)
}

// nil comparisons are the normal control flow: not flagged.
func nilCheck(err error) bool {
	return err == nil
}

// errors.Is follows the wrap chain: not flagged.
func is(err error) bool {
	return errors.Is(err, stable.ErrDataLoss)
}

type parseError struct{ msg string }

func (e *parseError) Error() string { return e.msg }

func assert(err error) bool {
	_, ok := err.(*parseError) // want `type assertion on an error`
	return ok
}

func typeSwitch(err error) string {
	switch err.(type) { // want `type switch on an error`
	case *parseError:
		return "parse"
	}
	return ""
}

// errors.As is the wrap-safe form: not flagged.
func as(err error) bool {
	var pe *parseError
	return errors.As(err, &pe)
}

// A justified exact-identity test: suppressed.
func identity(err error) bool {
	//roslint:exacterr asserting the unwrapped base error's own identity
	return err == stable.ErrBadBlock
}
