package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis/cfg"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	cfgs map[*ast.BlockStmt]*cfg.Graph
}

// cfgOf builds (once) and returns the CFG for a function body of this
// package. Not safe for concurrent use; the driver runs analyzers
// sequentially.
func (pkg *Package) cfgOf(body *ast.BlockStmt) *cfg.Graph {
	if pkg.cfgs == nil {
		pkg.cfgs = map[*ast.BlockStmt]*cfg.Graph{}
	}
	g := pkg.cfgs[body]
	if g == nil {
		g = cfg.New(body)
		pkg.cfgs[body] = g
	}
	return g
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (resolved from dir,
// "" for the current directory) and returns them with full syntax and
// type information. Only non-test Go files are loaded — the invariants
// roslint enforces live in production code, and in-package test files
// would need the test dependency graph.
//
// Packages are resolved and compiled by the go tool itself
// (`go list -export -json -deps`), so the loader needs no module-proxy
// access and no replication of build logic: dependencies — the
// standard library included — are imported from the export data the
// build cache already holds.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	if pkgs, ok := loadMemo[key]; ok {
		return pkgs, nil
	}
	pkgs, err := load(dir, patterns)
	if err == nil {
		loadMemo[key] = pkgs
	}
	return pkgs, err
}

// loadMemo caches Load results for the life of the process: one
// `go list -export` subprocess and one type-check per distinct
// (dir, patterns), shared by every analyzer that asks. Sources do not
// change mid-run, so the memo is never invalidated. Not safe for
// concurrent use, like the rest of the loader.
var loadMemo = map[string][]*Package{}

func load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
