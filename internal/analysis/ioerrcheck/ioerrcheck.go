// Package ioerrcheck flags silently dropped errors from stable-storage
// and recovery-protocol operations.
//
// The Lampson–Sturgis model the thesis builds on (§1.1) assumes every
// bad read or write is *observed*: stable storage stays stable only
// because failed operations are detected and retried or repaired. An
// error from a Device, Store, Log, network call, or two-phase-commit
// driver that is assigned to the blank identifier or discarded in an
// expression statement breaks that assumption in exactly the cold
// paths where recovery bugs live.
//
// Genuine best-effort operations (read-repair of a sibling copy whose
// data is already safely in hand; abort messages a participant can
// re-derive by querying the coordinator) carry //roslint:besteffort
// with a justification saying why losing the error is safe.
package ioerrcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ioerrcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "ioerrcheck",
	Doc:       "errors from stable storage, the log, the network, and 2PC must be observed",
	Directive: "besteffort",
	Run:       run,
}

// checkedTypes lists the types whose methods' error results must not be
// dropped: the stable-storage stack, the log, the network (both the
// simulation and the real serving layer, down to the sockets and
// deadlines it rides on), and the two-phase-commit driver.
var checkedTypes = map[string][]string{
	"repro/internal/stable":    {"Device", "MemDevice", "FileDevice", "Store"},
	"repro/internal/stablelog": {"Log", "Site", "FileVolume", "MemVolume", "Volume"},
	"repro/internal/netsim":    {"Network"},
	"repro/internal/twopc":     {"Coordinator"},
	"repro/internal/transport": {"Transport", "Loopback"},
	"repro/internal/server":    {"Server"},
	"repro/internal/client":    {"Client", "Transport", "RemoteReplica", "Routed", "Txn"},
	"repro/internal/replog":    {"Primary", "Backup", "Replica"},
	"net":                      {"Conn", "TCPConn", "UnixConn", "Listener", "TCPListener"},
}

// CheckedTypes exposes the checked set for tests that pin its
// coverage.
func CheckedTypes() map[string][]string { return checkedTypes }

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					checkDiscarded(pass, call)
				}
			case *ast.AssignStmt:
				checkBlank(pass, stmt)
			case *ast.GoStmt:
				checkDiscarded(pass, stmt.Call)
			case *ast.DeferStmt:
				checkDiscarded(pass, stmt.Call)
			}
			return true
		})
	}
	return nil
}

// checkDiscarded flags a checked call used as a bare statement when it
// returns an error.
func checkDiscarded(pass *analysis.Pass, call *ast.CallExpr) {
	fn := checkedCallee(pass, call)
	if fn == nil {
		return
	}
	if errResultIndex(fn) < 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s discarded; stable-storage and protocol errors must be observed (propagate it, or justify with //roslint:besteffort)",
		fullName(fn))
}

// checkBlank flags `_ = call` / `x, _ = call` where the blank position
// is the checked call's error result.
func checkBlank(pass *analysis.Pass, assign *ast.AssignStmt) {
	// Multi-value form: lhs... = f(...).
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := checkedCallee(pass, call)
	if fn == nil {
		return
	}
	errIdx := errResultIndex(fn)
	if errIdx < 0 {
		return
	}
	// Single-result call assigned to one lhs, or tuple assignment: the
	// error result lines up positionally.
	if len(assign.Lhs) <= errIdx {
		return
	}
	if id, ok := assign.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(assign.Pos(),
			"error from %s assigned to blank identifier; stable-storage and protocol errors must be observed (propagate it, or justify with //roslint:besteffort)",
			fullName(fn))
	}
}

// checkedCallee returns the called *types.Func if it is a method of one
// of the checked types (including interface methods), else nil.
func checkedCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	recv := sig.Recv().Type()
	// Interface methods: receiver is the interface type; resolve the
	// named type behind it.
	named := analysis.ReceiverNamed(recv)
	if named == nil {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	for _, name := range checkedTypes[obj.Pkg().Path()] {
		if obj.Name() == name {
			return fn
		}
	}
	return nil
}

// errResultIndex returns the index of fn's trailing error result, or
// -1.
func errResultIndex(fn *types.Func) int {
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	if res.Len() == 0 {
		return -1
	}
	last := res.At(res.Len() - 1)
	if named, ok := last.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return res.Len() - 1
	}
	return -1
}

func fullName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	named := analysis.ReceiverNamed(sig.Recv().Type())
	return named.Obj().Name() + "." + fn.Name()
}
