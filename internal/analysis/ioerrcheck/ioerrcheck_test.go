package ioerrcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ioerrcheck"
)

func TestIOErrCheck(t *testing.T) {
	analysistest.Run(t, ioerrcheck.Analyzer, "a")
}

// TestServingLayerInScope pins the serving layer's types into the
// checked set: a dropped socket or transport error is an
// acked-but-undelivered reply waiting to happen.
func TestServingLayerInScope(t *testing.T) {
	for pkg, want := range map[string]string{
		"net":                      "Conn",
		"repro/internal/transport": "Transport",
		"repro/internal/server":    "Server",
		"repro/internal/client":    "Client",
	} {
		found := false
		for _, name := range ioerrcheck.CheckedTypes()[pkg] {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("checkedTypes[%q] must include %s", pkg, want)
		}
	}
}
