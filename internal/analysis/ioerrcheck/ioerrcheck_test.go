package ioerrcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ioerrcheck"
)

func TestIOErrCheck(t *testing.T) {
	analysistest.Run(t, ioerrcheck.Analyzer, "a")
}

// TestServingLayerInScope pins the serving layer's types into the
// checked set: a dropped socket or transport error is an
// acked-but-undelivered reply waiting to happen.
func TestServingLayerInScope(t *testing.T) {
	for pkg, want := range map[string]string{
		"net":                      "Conn",
		"repro/internal/transport": "Transport",
		"repro/internal/server":    "Server",
		"repro/internal/client":    "Client",
	} {
		found := false
		for _, name := range ioerrcheck.CheckedTypes()[pkg] {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("checkedTypes[%q] must include %s", pkg, want)
		}
	}
}

// TestReplicationInScope pins the replication layer's types into the
// checked set: a dropped shipping or takeover error is a quorum that
// silently shrank — exactly the failure the replicated log exists to
// observe.
func TestReplicationInScope(t *testing.T) {
	for pkg, wants := range map[string][]string{
		"repro/internal/replog": {"Primary", "Backup", "Replica"},
		"repro/internal/client": {"RemoteReplica"},
	} {
		for _, want := range wants {
			found := false
			for _, name := range ioerrcheck.CheckedTypes()[pkg] {
				if name == want {
					found = true
				}
			}
			if !found {
				t.Errorf("checkedTypes[%q] must include %s", pkg, want)
			}
		}
	}
}

// TestShardingInScope pins the sharded serving layer's types into the
// checked set: a routed client or cross-shard transaction that drops a
// transport error can report commit for an action a shard never heard
// about.
func TestShardingInScope(t *testing.T) {
	for pkg, wants := range map[string][]string{
		"repro/internal/client": {"Routed", "Txn"},
		"repro/internal/server": {"Server"},
	} {
		for _, want := range wants {
			found := false
			for _, name := range ioerrcheck.CheckedTypes()[pkg] {
				if name == want {
					found = true
				}
			}
			if !found {
				t.Errorf("checkedTypes[%q] must include %s", pkg, want)
			}
		}
	}
}
