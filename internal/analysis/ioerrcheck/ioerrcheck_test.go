package ioerrcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ioerrcheck"
)

func TestIOErrCheck(t *testing.T) {
	analysistest.Run(t, ioerrcheck.Analyzer, "a")
}
