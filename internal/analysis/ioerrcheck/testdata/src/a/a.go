// Package a exercises ioerrcheck: discarded and blanked errors from
// the stable-storage stack are flagged; propagated errors and justified
// best-effort sites are not.
package a

import (
	"net"
	"time"

	"repro/internal/stable"
)

// A bare statement dropping a Device error: flagged.
func drop(d stable.Device, buf []byte) {
	d.WriteBlock(3, buf) // want `error from Device.WriteBlock discarded`
}

// Blank identifier on a single error result: flagged.
func blank(s *stable.Store, buf []byte) {
	_ = s.WritePage(1, buf) // want `error from Store.WritePage assigned to blank identifier`
}

// Blank in the error slot of a tuple: flagged.
func tupleBlank(s *stable.Store) []byte {
	data, _ := s.ReadPage(0) // want `error from Store.ReadPage assigned to blank identifier`
	return data
}

// Propagating is the norm: not flagged.
func checked(d stable.Device, buf []byte) error {
	return d.WriteBlock(5, buf)
}

// Capturing into a named variable is fine even if only logged.
func captured(s *stable.Store) int {
	_, err := s.ReadPage(2)
	if err != nil {
		return 1
	}
	return 0
}

// A justified best-effort rewrite: suppressed.
func repair(d stable.Device, buf []byte) {
	//roslint:besteffort read-repair of a sibling copy; the data is already safely in hand
	_ = d.WriteBlock(4, buf)
}

// Socket errors are in scope: the serving layer's correctness rests on
// write and deadline failures being observed (a lost error here is an
// acked-but-undelivered reply).
func netDrop(c net.Conn) {
	c.Close() // want `error from Conn.Close discarded`
}

func netBlank(c net.Conn, t time.Time) {
	_ = c.SetReadDeadline(t) // want `error from Conn.SetReadDeadline assigned to blank identifier`
}

// Tearing down a connection that is already being abandoned is the
// canonical justified case.
func netTeardown(c net.Conn) {
	//roslint:besteffort the conn is being abandoned; no reply is owed on it
	_ = c.Close()
}

// Methods of unrelated types are out of scope.
type sink struct{}

func (sink) WriteBlock(i int, p []byte) error { return nil }

func unrelated(s sink, buf []byte) {
	s.WriteBlock(0, buf)
}
