package cfg_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
)

// buildFunc parses src (one or more decls, no package clause) and
// builds the CFG of the first function declaration.
func buildFunc(t *testing.T, src string) (*cfg.Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return cfg.New(fd.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}

// blockWith returns the unique block containing a node whose printed
// source equals text exactly.
func blockWith(t *testing.T, g *cfg.Graph, fset *token.FileSet, text string) *cfg.Block {
	t.Helper()
	var found *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if nodeText(fset, n) == text {
				if found != nil && found != b {
					t.Fatalf("node %q appears in blocks %d and %d", text, found.Index, b.Index)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains node %q", text)
	}
	return found
}

func hasEdge(from, to *cfg.Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reaches reports whether to is reachable from from over Succs.
func reaches(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	var dfs func(*cfg.Block) bool
	dfs = func(b *cfg.Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func TestGotoEdges(t *testing.T) {
	g, fset := buildFunc(t, `
func f() int {
	x := 0
L:
	x++
	if x < 3 {
		goto L
	}
	return x
}`)
	label := blockWith(t, g, fset, "x++")
	gotoB := blockWith(t, g, fset, "goto L")
	cond := blockWith(t, g, fset, "x < 3")
	if !hasEdge(gotoB, label) {
		t.Errorf("goto L block %d has no edge to label block %d", gotoB.Index, label.Index)
	}
	if cond.Cond == nil || nodeText(fset, cond.Cond) != "x < 3" {
		t.Errorf("condition block %d lost its Cond", cond.Index)
	}
	// True edge of the condition leads (through the then block) to the
	// goto, false edge to the return.
	if !reaches(cond.Succs[0], gotoB) {
		t.Error("true edge does not reach the goto")
	}
	ret := blockWith(t, g, fset, "return x")
	if !reaches(cond.Succs[1], ret) {
		t.Error("false edge does not reach the return")
	}
	if reaches(cond.Succs[1], gotoB) {
		t.Error("false edge must not reach the goto")
	}
	// The label block has two predecessors: function entry and the
	// goto block.
	if len(label.Preds) != 2 {
		t.Errorf("label block has %d preds, want 2 (entry + goto)", len(label.Preds))
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g, fset := buildFunc(t, `
func f(xs [][]int) int {
	sum := 0
outer:
	for i := range xs {
		for _, v := range xs[i] {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			sum += v
		}
	}
	return sum
}`)
	outerHead := blockWith(t, g, fset, "xs")
	innerHead := blockWith(t, g, fset, "xs[i]")
	contB := blockWith(t, g, fset, "continue outer")
	brkB := blockWith(t, g, fset, "break outer")
	ret := blockWith(t, g, fset, "return sum")
	if !hasEdge(contB, outerHead) {
		t.Error("continue outer does not edge to the outer range header")
	}
	if hasEdge(contB, innerHead) {
		t.Error("continue outer must not edge to the inner header")
	}
	if !hasEdge(brkB, ret) {
		t.Error("break outer does not edge to the block after the outer loop")
	}
	if !outerHead.LoopHead || !innerHead.LoopHead {
		t.Error("range headers not marked LoopHead")
	}
	// Unlabeled fallthrough of the inner body continues at the inner
	// header (the back edge).
	body := blockWith(t, g, fset, "sum += v")
	if !hasEdge(body, innerHead) {
		t.Error("inner loop body does not edge back to the inner header")
	}
}

func TestSelectEdges(t *testing.T) {
	g, fset := buildFunc(t, `
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
	}
	return 0
}`)
	recvA := blockWith(t, g, fset, "x := <-a")
	recvB := blockWith(t, g, fset, "<-b")
	retX := blockWith(t, g, fset, "return x")
	ret0 := blockWith(t, g, fset, "return 0")
	if recvA != retX {
		t.Error("clause body split from its comm statement")
	}
	if !hasEdge(recvA, g.Exit) {
		t.Error("returning clause does not edge to Exit")
	}
	if !hasEdge(recvB, ret0) {
		t.Error("empty clause does not fall through to the statement after select")
	}
	// The select head fans out to exactly the two clauses: no direct
	// head→after edge (a select always runs a clause).
	head := g.Entry
	if len(head.Succs) != 2 {
		t.Errorf("select head has %d succs, want 2", len(head.Succs))
	}
	if reachesDirect(head, ret0) {
		t.Error("select head must not edge directly past the clauses")
	}
}

func reachesDirect(from, to *cfg.Block) bool { return hasEdge(from, to) }

func TestEmptySelectBlocksForever(t *testing.T) {
	g, _ := buildFunc(t, `
func f() {
	select {}
}`)
	// Nothing after an empty select is reachable: Exit's only
	// predecessor would be the fall-through block, which itself must
	// be unreachable.
	if g.FallBlock != nil && len(g.FallBlock.Preds) != 0 {
		t.Errorf("fall-through after select{} is reachable (preds %d)", len(g.FallBlock.Preds))
	}
	if reaches(g.Entry, g.Exit) {
		t.Error("Exit reachable across select{}")
	}
}

func TestDeferWithRecover(t *testing.T) {
	g, fset := buildFunc(t, `
func f(work func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	work()
	return nil
}`)
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
	// The deferred literal's body contributes no blocks: recover()
	// appears in no block node (cfg is per-function; literals are
	// opaque).
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			txt := nodeText(fset, n)
			if strings.Contains(txt, "recover()") && !strings.Contains(txt, "defer") {
				t.Errorf("deferred literal body leaked into block %d: %q", b.Index, txt)
			}
		}
	}
	// The defer statement itself is a node on the straight-line path.
	deferB := g.Entry
	found := false
	for _, n := range deferB.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Error("defer statement not recorded in the entry block")
	}
	ret := blockWith(t, g, fset, "return nil")
	if !hasEdge(ret, g.Exit) {
		t.Error("return does not edge to Exit")
	}
}

func TestPanicTerminates(t *testing.T) {
	g, fset := buildFunc(t, `
func f(b bool) int {
	if b {
		panic("boom")
	}
	return 1
}`)
	pb := blockWith(t, g, fset, `panic("boom")`)
	if !hasEdge(pb, g.Exit) {
		t.Error("panic does not edge to Exit")
	}
	ret := blockWith(t, g, fset, "return 1")
	if reaches(pb, ret) && !hasEdge(pb, g.Exit) {
		t.Error("panic falls through")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g, fset := buildFunc(t, `
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r += 2
	default:
		r = 9
	}
	return r
}`)
	c1 := blockWith(t, g, fset, "r = 1")
	c2 := blockWith(t, g, fset, "r += 2")
	def := blockWith(t, g, fset, "r = 9")
	if !hasEdge(c1, c2) {
		t.Error("fallthrough does not edge into the next case")
	}
	if hasEdge(c1, def) {
		t.Error("case 1 must not edge to default")
	}
	ret := blockWith(t, g, fset, "return r")
	if !hasEdge(c2, ret) || !hasEdge(def, ret) {
		t.Error("cases do not rejoin after the switch")
	}
	// With a default present there is no head→after edge.
	head := blockWith(t, g, fset, "x")
	if hasEdge(head, ret) {
		t.Error("switch with default must not edge directly to after")
	}
}

func TestDominators(t *testing.T) {
	g, fset := buildFunc(t, `
func f(c bool) int {
	a := 1
	if c {
		a = 2
	} else {
		a = 3
	}
	return a
}`)
	dom := g.Dominators()
	head := blockWith(t, g, fset, "c")
	thenB := blockWith(t, g, fset, "a = 2")
	elseB := blockWith(t, g, fset, "a = 3")
	ret := blockWith(t, g, fset, "return a")
	if !dom.Dominates(head, thenB) || !dom.Dominates(head, elseB) || !dom.Dominates(head, ret) {
		t.Error("branch head must dominate both arms and the join")
	}
	if dom.Dominates(thenB, ret) || dom.Dominates(elseB, ret) {
		t.Error("neither arm may dominate the join")
	}
	if dom.Idom(ret) != head {
		t.Errorf("idom(join) = block %v, want the branch head", dom.Idom(ret))
	}
}

// TestSolveEdgePruning runs a forward may-reachability analysis with
// the true edge of the condition pruned: the then arm must be
// reported unreached, the else arm and join reached.
func TestSolveEdgePruning(t *testing.T) {
	g, fset := buildFunc(t, `
func f(c bool) {
	if c {
		athen()
	} else {
		aelse()
	}
	after()
}`)
	head := blockWith(t, g, fset, "c")
	res := cfg.Solve(g, cfg.Analysis[bool]{
		Dir:      cfg.Forward,
		Boundary: true,
		Transfer: func(b *cfg.Block, in bool) bool { return in },
		Meet:     func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
		EdgeOK: func(from, to *cfg.Block) bool {
			return !(from == head && to == head.Succs[0])
		},
	})
	thenB := blockWith(t, g, fset, "athen()")
	elseB := blockWith(t, g, fset, "aelse()")
	after := blockWith(t, g, fset, "after()")
	if _, ok := res.In[thenB]; ok {
		t.Error("pruned then arm still received a fact")
	}
	if _, ok := res.In[elseB]; !ok {
		t.Error("else arm received no fact")
	}
	if _, ok := res.In[after]; !ok {
		t.Error("join received no fact")
	}
}

// TestSolveBackward: a backward may-analysis ("can this block reach
// Exit without passing a force() call") — the shape forcebarrier
// uses.
func TestSolveBackward(t *testing.T) {
	g, fset := buildFunc(t, `
func f(c bool) {
	write()
	if c {
		force()
		return
	}
	return
}`)
	hasForce := func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(token.NewFileSet(), n), "force") {
				return true
			}
		}
		return false
	}
	res := cfg.Solve(g, cfg.Analysis[bool]{
		Dir:      cfg.Backward,
		Boundary: true, // Exit reaches Exit unforced
		Transfer: func(b *cfg.Block, in bool) bool {
			if hasForce(b) {
				return false
			}
			return in
		},
		Meet:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
	})
	forceB := blockWith(t, g, fset, "force()")
	writeB := blockWith(t, g, fset, "write()")
	if out := res.Out[forceB]; out {
		t.Error("forced path still counted as reaching exit unforced")
	}
	// The write block reaches Exit unforced via the else path.
	if out := res.Out[writeB]; !out {
		t.Error("unforced else path not detected from the write block")
	}
}
