// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward/backward dataflow problems on
// them. It is the flow engine behind the roslint analyzers: the PR 2
// analyzers walked statement trees conservatively (a branch anywhere
// ended the analysis without a verdict), while the CFG makes every
// path explicit — if/else arms, loop back edges, labeled break and
// continue, goto, switch fallthrough, select clauses — so analyses
// like "the mutex is released on every path" or "this LSN is forced
// before every return" become dominance and reachability questions
// instead of syntactic approximations.
//
// The graph is purely syntactic (no go/types dependency): each Block
// is a maximal straight-line run of statement and condition nodes,
// executed in full once entered. Branch conditions are recorded both
// as ordinary nodes (so expression-level facts such as a Lock call in
// a condition are visible) and as Block.Cond, with the true successor
// first — edge-sensitive analyses prune on that.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is a basic block: nodes execute in order, and control
// leaves only after the last one. Nodes holds statements plus, for
// branch heads, the condition expression; function literals appearing
// inside a node are a different function body and must be pruned by
// clients walking node subtrees.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Entry is 0).
	Index int
	// Nodes are the statements/conditions executed by this block.
	Nodes []ast.Node
	// Succs are successor blocks. When Cond is non-nil, Succs[0] is
	// the true edge and Succs[1] (if present) the false edge.
	Succs []*Block
	// Preds are predecessor blocks.
	Preds []*Block
	// Cond, when non-nil, is the branch condition ending the block
	// (an if or for condition). Switch/select/type-switch heads fan
	// out without a Cond.
	Cond ast.Expr
	// LoopHead marks for/range headers: a Pred dominated by this
	// block is a back edge.
	LoopHead bool
	// Stmt is the statement that gave rise to this block, when one
	// did: the if/for/switch/select for join ("after") blocks and
	// loop headers. Analyses use it to position join-point reports.
	Stmt ast.Stmt
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the unique entry block.
	Entry *Block
	// Exit is the unique synthetic exit: every return, panic, and the
	// end-of-body fall-through edge into it. It holds no nodes.
	Exit *Block
	// Blocks lists all blocks (including unreachable ones left behind
	// by returns/gotos) indexed by Block.Index.
	Blocks []*Block
	// Defers lists the defer statements seen anywhere in the body, in
	// source order. Deferred calls run at every exit once their defer
	// statement has executed on the path taken.
	Defers []*ast.DeferStmt
	// FallBlock is the block whose edge to Exit is the end-of-body
	// fall-through (nil when the body cannot fall off the end). For a
	// function with results the type checker guarantees this block is
	// unreachable; for void functions it is the implicit return.
	FallBlock *Block
}

// labelInfo tracks one label's targets: the goto target (the labeled
// statement itself, re-running any loop init) and, for labels on
// loops/switches, the break/continue targets.
type labelInfo struct {
	target *Block // goto target; created on first reference
	brk    *Block
	cont   *Block
}

// frame is one enclosing breakable construct (loop, switch, select).
// cont is nil for switch/select.
type frame struct {
	label     string
	brk, cont *Block
}

type builder struct {
	g      *Graph
	cur    *Block
	labels map[string]*labelInfo
	frames []frame
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so that construct can register its break/continue
	// targets under the label.
	pendingLabel *labelInfo
	// fallTargets maps a switch case body's index to the next case
	// block, consumed by fallthrough statements.
	fallTarget *Block
}

// New builds the CFG of one function body (a FuncDecl.Body or
// FuncLit.Body). Nested function literals are treated as opaque
// values: their bodies contribute no blocks or edges — build a
// separate graph for each literal.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		g.FallBlock = b.cur
		b.edge(b.cur, g.Exit)
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// emit appends a node to the current block.
func (b *builder) emit(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// terminate ends the current path: subsequent statements start in a
// fresh block with no predecessors (dead until a label lands on it).
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findFrame returns the innermost frame matching label (any breakable
// frame for break, loop frames for continue). Empty label matches the
// innermost eligible frame.
func (b *builder) findFrame(label string, needCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		if li.target == nil {
			li.target = b.newBlock()
		}
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.pendingLabel = li
		b.stmt(s.Stmt)
		b.pendingLabel = nil

	case *ast.ReturnStmt:
		b.emit(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()

	case *ast.BranchStmt:
		b.emit(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(label, false); f != nil {
				b.edge(b.cur, f.brk)
			}
			b.terminate()
		case token.CONTINUE:
			if f := b.findFrame(label, true); f != nil {
				b.edge(b.cur, f.cont)
			}
			b.terminate()
		case token.GOTO:
			li := b.label(label)
			if li.target == nil {
				li.target = b.newBlock()
			}
			b.edge(b.cur, li.target)
			b.terminate()
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				b.edge(b.cur, b.fallTarget)
			}
			b.terminate()
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		head := b.cur
		head.Cond = s.Cond
		thenB := b.newBlock()
		b.edge(head, thenB)
		join := b.newBlock()
		join.Stmt = s
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = thenB
			b.stmtList(s.Body.List)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(head, join)
			b.cur = thenB
			b.stmtList(s.Body.List)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		}
		b.cur = join

	case *ast.ForStmt:
		pl := b.takeLabel()
		if s.Init != nil {
			b.emit(s.Init)
		}
		header := b.newBlock()
		header.LoopHead = true
		header.Stmt = s
		b.edge(b.cur, header)
		after := b.newBlock()
		after.Stmt = s
		var post *Block
		contTarget := header
		if s.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		body := b.newBlock()
		b.cur = header
		if s.Cond != nil {
			b.emit(s.Cond)
			header.Cond = s.Cond
			b.edge(header, body)
			b.edge(header, after)
		} else {
			// for{}: after is reachable only through break.
			b.edge(header, body)
		}
		b.pushFrame(frame{brk: after, cont: contTarget}, pl, after, contTarget)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popFrame()
		if b.cur != nil {
			b.edge(b.cur, contTarget)
		}
		if post != nil {
			b.cur = post
			b.emit(s.Post)
			b.edge(post, header)
		}
		b.cur = after

	case *ast.RangeStmt:
		pl := b.takeLabel()
		header := b.newBlock()
		header.LoopHead = true
		header.Stmt = s
		b.edge(b.cur, header)
		b.cur = header
		b.emit(s.X)
		after := b.newBlock()
		after.Stmt = s
		body := b.newBlock()
		b.edge(header, body)
		b.edge(header, after)
		b.pushFrame(frame{brk: after, cont: header}, pl, after, header)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popFrame()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.cur = after

	case *ast.SwitchStmt:
		pl := b.takeLabel()
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchClauses(s, s.Body.List, pl, true)

	case *ast.TypeSwitchStmt:
		pl := b.takeLabel()
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.switchClauses(s, s.Body.List, pl, false)

	case *ast.SelectStmt:
		pl := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		after.Stmt = s
		b.pushFrame(frame{brk: after}, pl, after, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.popFrame()
		// A select always executes one of its clauses (default is a
		// clause); select{} blocks forever — no head→after edge.
		b.cur = after

	case *ast.DeferStmt:
		b.emit(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanic(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.terminate()
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Decl, Send, Go, ... — straight-line.
		b.emit(s)
	}
}

// switchClauses builds the fan-out for switch and type-switch bodies.
func (b *builder) switchClauses(s ast.Stmt, clauses []ast.Stmt, pl *labelInfo, allowFall bool) {
	head := b.cur
	after := b.newBlock()
	after.Stmt = s
	b.pushFrame(frame{brk: after}, pl, after, nil)
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
		if clauses[i].(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	savedFall := b.fallTarget
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blk := blocks[i]
		b.edge(head, blk)
		b.cur = blk
		for _, e := range cc.List {
			b.emit(e)
		}
		if allowFall && i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.fallTarget = savedFall
	b.popFrame()
	b.cur = after
}

// takeLabel consumes the pending label (set when this construct is
// the direct statement of a LabeledStmt).
func (b *builder) takeLabel() *labelInfo {
	pl := b.pendingLabel
	b.pendingLabel = nil
	return pl
}

func (b *builder) pushFrame(f frame, pl *labelInfo, brk, cont *Block) {
	if pl != nil {
		pl.brk = brk
		pl.cont = cont
		// Find the label's name for labeled break/continue matching.
		for name, l := range b.labels {
			if l == pl {
				f.label = name
			}
		}
	}
	b.frames = append(b.frames, f)
}

func (b *builder) popFrame() {
	b.frames = b.frames[:len(b.frames)-1]
}

// isPanic reports whether e is a call to the builtin panic. Purely
// syntactic: a shadowed panic identifier would be misclassified, which
// no code in this repository does.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
