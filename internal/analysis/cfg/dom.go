package cfg

// Dominator computation: the iterative algorithm of Cooper, Harvey,
// and Kennedy over a reverse-postorder numbering. Graphs here are the
// size of one function body, so simplicity beats the sophisticated
// Lengauer–Tarjan machinery.

// Dom holds the dominator tree of a Graph.
type Dom struct {
	idom []*Block // immediate dominator by Block.Index; nil for entry and unreachable blocks
	g    *Graph
}

// Dominators computes the dominator tree from Entry. Unreachable
// blocks have no dominator and are reported as dominated by nothing
// (and dominating nothing but themselves).
func (g *Graph) Dominators() *Dom {
	// Reverse postorder over reachable blocks.
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	rpo := make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, len(g.Blocks))
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b.Index] = i
	}

	idom := make([]*Block, len(g.Blocks))
	idom[g.Entry.Index] = g.Entry // sentinel; cleared below
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpoNum[a.Index] > rpoNum[b.Index] {
				a = idom[a.Index]
			}
			for rpoNum[b.Index] > rpoNum[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p.Index] == nil && p != g.Entry {
					continue // unprocessed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	idom[g.Entry.Index] = nil
	return &Dom{idom: idom, g: g}
}

// Idom returns b's immediate dominator (nil for the entry block and
// unreachable blocks).
func (d *Dom) Idom(b *Block) *Block { return d.idom[b.Index] }

// Dominates reports whether a dominates b (reflexively: every block
// dominates itself).
func (d *Dom) Dominates(a, b *Block) bool {
	for x := b; x != nil; x = d.idom[x.Index] {
		if x == a {
			return true
		}
	}
	return false
}

// StrictlyDominates reports whether a dominates b and a != b.
func (d *Dom) StrictlyDominates(a, b *Block) bool {
	return a != b && d.Dominates(a, b)
}

// Reachable reports whether b is reachable from Entry.
func (d *Dom) Reachable(b *Block) bool {
	return b == d.g.Entry || d.idom[b.Index] != nil
}
