package cfg

// A small worklist dataflow framework. Clients describe a problem as
// per-block transfer functions over an arbitrary fact type plus a
// meet; the solver iterates to a fixpoint. Both may-analyses (meet =
// union) and must-analyses (meet = intersection) fit: blocks that
// have not been reached yet simply contribute nothing to the meet,
// which is the optimistic ("top") initial value — exactly what a
// must-analysis over a lattice of sets wants, and harmless for a
// may-analysis.

// Direction selects forward (facts flow Entry→Exit along Succs) or
// backward (Exit→Entry along Preds) propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Analysis describes one dataflow problem over a Graph. F is the
// per-block fact type; facts must be treated as immutable values
// (Transfer returns a fresh fact, it never mutates its input).
type Analysis[F any] struct {
	Dir Direction
	// Boundary is the fact entering the graph: at Entry for a forward
	// analysis, at Exit for a backward one.
	Boundary F
	// Transfer maps the fact at a block's input edge to the fact at
	// its output edge, applying the block's Nodes in execution order
	// (for a backward analysis, "input" is the end of the block).
	Transfer func(b *Block, in F) F
	// Meet combines facts arriving over two edges (union for may,
	// intersection for must). It is only called with facts from edges
	// that have actually produced one — unreached edges contribute
	// nothing.
	Meet func(a, b F) F
	// Equal detects the fixpoint.
	Equal func(a, b F) bool
	// EdgeOK, when non-nil, prunes edges: facts do not propagate over
	// edges it rejects. Edge-sensitive clients (forcebarrier's
	// err-guard exclusion) use it to cut infeasible paths.
	EdgeOK func(from, to *Block) bool
}

// Result holds the solved facts. In[b] is the fact at the block's
// entry (its exit for a backward analysis), Out[b] at the opposite
// edge. Blocks never reached by propagation are absent from both
// maps — absence is the "unreachable" verdict.
type Result[F any] struct {
	In, Out map[*Block]F
}

// Solve runs the worklist iteration to a fixpoint and returns the
// per-block facts.
func Solve[F any](g *Graph, a Analysis[F]) *Result[F] {
	res := &Result[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	start := g.Entry
	next := func(b *Block) []*Block { return b.Succs }
	prev := func(b *Block) []*Block { return b.Preds }
	edgeOK := func(from, to *Block) bool {
		return a.EdgeOK == nil || a.EdgeOK(from, to)
	}
	if a.Dir == Backward {
		start = g.Exit
		next = func(b *Block) []*Block { return b.Preds }
		prev = func(b *Block) []*Block { return b.Succs }
		fwd := edgeOK
		edgeOK = func(from, to *Block) bool { return fwd(to, from) }
	}

	res.In[start] = a.Boundary
	res.Out[start] = a.Transfer(start, a.Boundary)
	work := []*Block{}
	inWork := make([]bool, len(g.Blocks))
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, s := range next(start) {
		push(s)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		var in F
		have := false
		for _, p := range prev(b) {
			out, ok := res.Out[p]
			if !ok || !edgeOK(p, b) {
				continue
			}
			if !have {
				in, have = out, true
			} else {
				in = a.Meet(in, out)
			}
		}
		if !have {
			continue // not yet reached over any live edge
		}
		oldIn, hadIn := res.In[b]
		if hadIn && a.Equal(oldIn, in) {
			continue
		}
		res.In[b] = in
		out := a.Transfer(b, in)
		oldOut, hadOut := res.Out[b]
		if hadOut && a.Equal(oldOut, out) {
			continue
		}
		res.Out[b] = out
		for _, s := range next(b) {
			push(s)
		}
	}
	return res
}
