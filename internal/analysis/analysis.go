// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so
// the repository carries no external dependencies. It exists to host
// the roslint analyzers (cmd/roslint): custom static checks that
// enforce the thesis's recovery invariants — rules like "outcome
// entries are forced, never buffered" (§3.1/§4.1) and "stable-storage
// errors are never silently dropped" (the Lampson–Sturgis fail-stop
// model only holds if every bad read/write is observed) — at compile
// time rather than in reviewers' heads.
//
// The shape mirrors go/analysis deliberately: an Analyzer holds a Run
// function over a Pass, the Pass exposes the package's syntax and type
// information and a Report sink, and testdata packages are checked with
// "// want" comments (package analysistest). What is intentionally
// simpler: analyzers run over non-test files of whole packages (no
// SSA, no facts, no modular analysis), and packages are loaded with
// export data produced by `go list -export` (package load.go) instead
// of go/packages.
//
// # Exemption directives
//
// Every analyzer names a directive; a finding is suppressed by a
// comment of the form
//
//	//roslint:<directive> <justification>
//
// placed on the flagged line or alone on the line immediately above.
// The justification is mandatory — the analyzers verify it — and an
// exemption that suppresses nothing is itself reported, so stale
// annotations cannot accumulate. The directive names in use:
//
//	forcebarrier   //roslint:unforced
//	ioerrcheck     //roslint:besteffort
//	determinism    //roslint:nondet
//	errsentinel    //roslint:exacterr
//	lockdiscipline //roslint:lockorder
//	epochfence     //roslint:unfenced
//	wirecodec      //roslint:wiregap
//	deadlinecheck  //roslint:nodeadline
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/cfg"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, one word).
	Name string
	// Doc is the analyzer's help text; the first line is a summary.
	Doc string
	// Directive is the //roslint:<Directive> annotation that exempts a
	// finding of this analyzer (with a mandatory justification).
	Directive string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory, for analyzers that need
	// sibling files the loader excludes (wirecodec reads _test.go
	// files to verify fuzz coverage).
	Dir string

	pkg        *Package
	diags      []Diagnostic
	directives []*directive
}

// CFG returns the control-flow graph of one function body, built on
// first request and cached on the package: the graphs are pure syntax,
// so every analyzer in a run shares one construction per function
// instead of rebuilding its own.
func (p *Pass) CFG(body *ast.BlockStmt) *cfg.Graph {
	return p.pkg.cfgOf(body)
}

// directive is one parsed //roslint:<name> comment.
type directive struct {
	pos    token.Pos
	line   int    // line the comment appears on
	file   string // file name
	name   string
	reason string
	used   bool
}

var directiveRE = regexp.MustCompile(`^//roslint:([a-z]+)(?:[ \t]+(.*))?$`)

// newPass builds a pass and scans the package's comments for this
// analyzer's directives.
func newPass(a *Analyzer, pkg *Package) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Dir:       pkg.Dir,
		pkg:       pkg,
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil || m[1] != a.Directive {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				p.directives = append(p.directives, &directive{
					pos:    c.Pos(),
					line:   pos.Line,
					file:   pos.Filename,
					name:   m[1],
					reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return p
}

// Reportf records a finding at pos unless an exemption directive covers
// it. An exemption covers a finding when it sits on the same line or
// alone on the line immediately above.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	for _, d := range p.directives {
		if d.file != position.Filename {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			d.used = true
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// finish appends the directive-hygiene findings: an exemption with no
// justification, and an exemption that suppressed nothing.
func (p *Pass) finish() {
	for _, d := range p.directives {
		if d.used && d.reason == "" {
			p.diags = append(p.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("//roslint:%s needs a justification (say why the exemption is safe)", d.name),
			})
		}
		if !d.used {
			p.diags = append(p.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("unused //roslint:%s exemption (nothing here triggers %s)", d.name, p.Analyzer.Name),
			})
		}
	}
}

// RunPass applies one analyzer to one loaded package and returns its
// findings sorted by position.
func RunPass(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	p := newPass(a, pkg)
	if err := a.Run(p); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	p.finish()
	sort.Slice(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags, nil
}

// UnknownDirectives scans a package for //roslint: comments whose name
// is not in known — typos would otherwise silently exempt nothing (or
// worse, be believed to). The driver calls this once per package.
func UnknownDirectives(pkg *Package, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//roslint:") {
					continue
				}
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "roslint",
						Message:  fmt.Sprintf("malformed roslint directive %q", c.Text),
					})
					continue
				}
				if !known[m[1]] {
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "roslint",
						Message:  fmt.Sprintf("unknown roslint directive %q (known: %s)", m[1], knownNames(known)),
					})
				}
			}
		}
	}
	return out
}

func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// TypeByName resolves a named type (package path + name) against the
// imports visible to pkg, returning nil if the package or name is not
// in the dependency graph. Analyzers use it to recognize, e.g.,
// repro/internal/stable.Device without importing it.
func TypeByName(pkg *types.Package, path, name string) types.Object {
	if pkg.Path() == path {
		return pkg.Scope().Lookup(name)
	}
	for _, imp := range allImports(pkg, map[*types.Package]bool{}) {
		if imp.Path() == path {
			return imp.Scope().Lookup(name)
		}
	}
	return nil
}

func allImports(pkg *types.Package, seen map[*types.Package]bool) []*types.Package {
	var out []*types.Package
	for _, imp := range pkg.Imports() {
		if seen[imp] {
			continue
		}
		seen[imp] = true
		out = append(out, imp)
		out = append(out, allImports(imp, seen)...)
	}
	return out
}

// ReceiverNamed unwraps pointers and returns the named type of t, or
// nil.
func ReceiverNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethodOf reports whether fn is a method whose receiver is the named
// type pkgPath.typeName (pointer or value receiver).
func IsMethodOf(fn *types.Func, pkgPath, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := ReceiverNamed(sig.Recv().Type())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

// CalleeFunc resolves the *types.Func a call expression invokes (method
// or package function), or nil for indirect calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
