// Package a exercises determinism: wall-clock reads, the global rand
// source, goroutines, and map ranges are flagged in scoped packages;
// seeded sources and justified order-independent ranges are not.
package a

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
}

func global() int {
	return rand.Int() // want `rand.Int uses the global rand source`
}

// Explicitly seeded sources are reproducible: not flagged.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want `goroutine spawned in a sweep-deterministic package`
}

func mapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// Order-independent drain with a justification: suppressed.
func count(m map[int]bool) int {
	n := 0
	//roslint:nondet order-independent: commutative count over values
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// Ranging a slice is always ordered: not flagged.
func slices(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Durations are constants, not clock reads: not flagged.
func budget(d time.Duration) bool {
	return d > time.Second
}
