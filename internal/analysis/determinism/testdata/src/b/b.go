// Package b is allowlisted wholesale (the soak-driver case): nothing
// here is flagged even though it reads the clock and the global rand.
package b

import (
	"math/rand"
	"time"
)

func jitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Second))) + time.Since(time.Now())
}
