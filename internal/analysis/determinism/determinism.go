// Package determinism forbids nondeterminism sources in the packages
// the exhaustive crash-point sweep depends on.
//
// The sweep (internal/crashtest, PR 1) replays one scripted history,
// counts its device writes, and crashes at every write index — a crash
// *matrix* that is exhaustive only if the same seed always produces the
// same write sequence. Wall-clock reads, the global (unseeded)
// math/rand source, spawned goroutines, and map iteration feeding
// output all break that: the same history would lay down different
// bytes, or the same write index would land at a different protocol
// point, and a failing scenario could not be replayed from its
// reported schedule.
//
// The analyzer checks a fixed set of packages (the sweep, the guardian,
// both log organizations it drives, the stable log itself — whose
// group-commit force scheduler must stay purely reactive: no spawned
// goroutines or timers, so a single-threaded call sequence produces
// one device-write sequence — the serving-layer client, whose
// retry backoff must draw time and jitter only from its injected
// Clock/Rand so tests can script the exact schedule, and the log
// replicator, whose shipping rounds run inline in the force path and
// whose partition matrix is replayed byte-for-byte) for:
//
//   - calls to time.Now / Since / Until / Sleep / After / Tick /
//     NewTimer / NewTicker,
//   - calls to math/rand package-level functions other than the
//     explicitly seeded constructors (New, NewSource, NewZipf),
//   - go statements, and
//   - range over a map.
//
// A map range whose effect is provably order-independent (installing
// into another keyed structure, draining for membership) carries
// //roslint:nondet with the justification; everything that feeds log
// writes, message order, or reported lists is expected to be sorted
// instead. The intentionally randomized soak driver (cmd/roscrash) is
// allowlisted as a package.
package determinism

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "determinism",
	Doc:       "the crash-sweep's packages must be deterministic: no wall clock, global rand, goroutines, or map-order dependence",
	Directive: "nondet",
	Run:       run,
}

// ScopedPackages are the packages the invariant covers: the crash
// harness itself and every layer whose writes it counts and replays.
var ScopedPackages = map[string]bool{
	"repro/internal/crashtest": true,
	"repro/internal/guardian":  true,
	"repro/internal/simplelog": true,
	"repro/internal/hybridlog": true,
	"repro/internal/stablelog": true,
	"repro/internal/objindex":  true,
	"repro/internal/obs":       true,
	"repro/internal/shard":     true,
	"repro/internal/client":    true,
	"repro/internal/replog":    true,
	"repro/cmd/roscrash":       true,
	// The chaos workload generator: its op stream must be a pure
	// function of (Config, seed) so an episode is replayable from its
	// manifest. internal/chaos itself is deliberately out of scope — a
	// fault injector's whole job is wall-clock pacing and real process
	// signals.
	"repro/internal/chaos/workload": true,
}

// AllowedPackages are scoped packages exempted wholesale: the soak
// driver is *intentionally* randomized (it seeds from the flag-provided
// seed but times its own progress output).
var AllowedPackages = map[string]string{
	"repro/cmd/roscrash": "intentionally randomized soak driver; determinism holds per -seed, wall clock only times progress output",
}

// seededConstructors are the math/rand entry points that take an
// explicit source and are therefore reproducible.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// clockFuncs are the time package functions that read or depend on the
// wall clock.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) error {
	if !ScopedPackages[pass.Pkg.Path()] {
		return nil
	}
	if _, ok := AllowedPackages[pass.Pkg.Path()]; ok {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, node)
			case *ast.GoStmt:
				pass.Reportf(node.Pos(),
					"goroutine spawned in a sweep-deterministic package; concurrent scheduling reorders device writes and breaks crash-point replay")
			case *ast.RangeStmt:
				checkRange(pass, node)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	switch fn.Pkg().Path() {
	case "time":
		if sig.Recv() == nil && clockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a sweep-deterministic package; the crash matrix requires identical runs per seed",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on a *rand.Rand are fine — the source was seeded
		// explicitly. Package-level functions use the shared global
		// source.
		if sig.Recv() == nil && !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s uses the global rand source in a sweep-deterministic package; use rand.New(rand.NewSource(seed))",
				fn.Name())
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic; sort the keys if this feeds log writes, messages, or reported lists (or justify with //roslint:nondet)")
}
