package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

const testdataPrefix = "repro/internal/analysis/determinism/testdata/src/"

func TestDeterminism(t *testing.T) {
	// The invariant is scoped by import path; put the testdata packages
	// in scope the same way the real sweep packages are.
	determinism.ScopedPackages[testdataPrefix+"a"] = true
	determinism.ScopedPackages[testdataPrefix+"b"] = true
	determinism.AllowedPackages[testdataPrefix+"b"] = "allowlisted like the soak driver"
	defer func() {
		delete(determinism.ScopedPackages, testdataPrefix+"a")
		delete(determinism.ScopedPackages, testdataPrefix+"b")
		delete(determinism.AllowedPackages, testdataPrefix+"b")
	}()
	analysistest.Run(t, determinism.Analyzer, "a", "b")
}

// TestServingClientInScope pins the serving-layer client into the
// deterministic set: its retry backoff must draw time and jitter only
// from its injected Clock and Rand, so tests can script the exact
// retry schedule.
func TestServingClientInScope(t *testing.T) {
	if !determinism.ScopedPackages["repro/internal/client"] {
		t.Fatal("repro/internal/client must stay in determinism's ScopedPackages")
	}
}

// TestReplicatorInScope pins the log replicator into the deterministic
// set: its shipping rounds run inline in the force path (no goroutines,
// no clocks, no randomness), which is what lets the crash sweep replay
// replicated histories and the partition matrix compare traces
// byte-for-byte across transports.
func TestReplicatorInScope(t *testing.T) {
	if !determinism.ScopedPackages["repro/internal/replog"] {
		t.Fatal("repro/internal/replog must stay in determinism's ScopedPackages")
	}
}

// TestShardTableInScope pins the routing-table package into the
// deterministic set: Owner and the table codec must be pure functions
// of their inputs, so every node (and the client's cached copy)
// computes identical ownership and identical bytes for the same
// table version.
func TestShardTableInScope(t *testing.T) {
	if !determinism.ScopedPackages["repro/internal/shard"] {
		t.Fatal("repro/internal/shard must stay in determinism's ScopedPackages")
	}
}

// TestWorkloadInScope pins the chaos workload generator into the
// deterministic set: the op stream must be a pure function of the
// (Config, seed) pair, so a failed chaos episode replays byte-for-byte
// from the manifest in its report. The chaos harness itself stays out
// of scope deliberately — injecting wall-clock faults is its job.
func TestWorkloadInScope(t *testing.T) {
	if !determinism.ScopedPackages["repro/internal/chaos/workload"] {
		t.Fatal("repro/internal/chaos/workload must stay in determinism's ScopedPackages")
	}
}

// TestOutOfScope checks that an unscoped package is ignored entirely:
// package b reads the clock and the global rand, and nothing may be
// reported when it is not in ScopedPackages.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "b")
}
