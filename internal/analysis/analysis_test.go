package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// testAnalyzer flags every call to a function literally named "flagme".
var testAnalyzer = &analysis.Analyzer{
	Name:      "testcheck",
	Doc:       "flags calls to flagme",
	Directive: "testdir",
	Run: func(p *analysis.Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						p.Reportf(call.Pos(), "flagme called")
					}
				}
				return true
			})
		}
		return nil
	},
}

func loadHygiene(t *testing.T) *analysis.Package {
	t.Helper()
	pkgs, err := analysis.Load(".", "./testdata/src/hygiene")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

func TestDirectiveHygiene(t *testing.T) {
	pkg := loadHygiene(t)
	diags, err := analysis.RunPass(testAnalyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	// In position order: the unsuppressed call in flagged(), the
	// missing justification in bare(), the unused exemption in stale().
	// The call in typoed() is NOT suppressed by the misspelled
	// directive, so it is reported too.
	want := []string{
		"flagme called",
		"needs a justification",
		"unused //roslint:testdir exemption",
		"flagme called",
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %+v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diag %d = %q, want it to contain %q", i, diags[i].Message, w)
		}
	}
}

func TestUnknownDirectives(t *testing.T) {
	pkg := loadHygiene(t)
	diags := analysis.UnknownDirectives(pkg, map[string]bool{"testdir": true})
	if len(diags) != 1 {
		t.Fatalf("got %d unknown-directive diagnostics, want 1: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `unknown roslint directive "tpyo"`) {
		t.Errorf("unexpected message %q", diags[0].Message)
	}
}
