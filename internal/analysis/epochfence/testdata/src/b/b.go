// Package b carries the same bug shapes as package a but is not in
// ScopePackages: nothing may be reported.
package b

// RepAck mirrors the wire ack.
type RepAck struct {
	Epoch   uint64
	Durable uint64
}

// Primary is an unscoped replication sender.
type Primary struct {
	epoch  uint64
	cursor uint64
}

// Ship would violate both rules if package b were in scope.
func (p *Primary) Ship(ack RepAck) {
	if ack.Epoch > p.epoch {
		return
	}
	p.cursor = ack.Durable
}

// Apply mutates without any fence.
func (p *Primary) Apply(ack RepAck) {
	p.cursor = ack.Durable
}
