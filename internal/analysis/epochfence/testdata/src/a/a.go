// Package a models the rep protocol's shapes for epochfence: the wire
// message types mirror repro/internal/wire (Rep* structs carrying an
// Epoch), the participants mirror replog's Primary and Backup.
package a

// RepAppend ships a frame run at the sender's epoch.
type RepAppend struct {
	Epoch  uint64
	Start  uint64
	Frames []byte
}

// RepAck is the replica's durability acknowledgment.
type RepAck struct {
	Epoch   uint64
	Durable uint64
	Applied bool
}

// RepHeartbeat probes a replica.
type RepHeartbeat struct {
	Epoch   uint64
	Durable uint64
}

// Guardian stands in for the recovered guardian a promotion installs.
type Guardian struct{ n int }

// Backup is a replication receiver with an epoch to fence on.
type Backup struct {
	epoch    uint64
	durable  uint64
	promoted bool
	g        *Guardian
}

// Append applies a run without ever comparing epochs — the exact bug
// shape PR 6's review fixed: a deposed primary's append mutates the
// promoted backup's state.
func (b *Backup) Append(app RepAppend) RepAck {
	b.durable += uint64(len(app.Frames)) // want `replica state b\.durable is mutated in a rep handler without a dominating epoch fence`
	return RepAck{Epoch: b.epoch, Durable: b.durable, Applied: true}
}

// AppendFenced refuses stale senders and adopts the epoch before
// touching state: every mutation is dominated by the comparison.
func (b *Backup) AppendFenced(app RepAppend) RepAck {
	if b.promoted || app.Epoch < b.epoch {
		return RepAck{Epoch: b.epoch, Durable: b.durable}
	}
	b.epoch = app.Epoch
	b.durable += uint64(len(app.Frames))
	return RepAck{Epoch: b.epoch, Durable: b.durable, Applied: true}
}

// Heartbeat adopts a newer epoch — the adoption is itself the latch
// for the higher-epoch observation, and the fence for the write.
func (b *Backup) Heartbeat(hb RepHeartbeat) RepAck {
	if !b.promoted && hb.Epoch > b.epoch {
		b.epoch = hb.Epoch
	}
	return RepAck{Epoch: b.epoch, Durable: b.durable}
}

// Promote latches the promoted flag before bumping the epoch: the
// mutation precedes its fence. PR 6's ordering discipline wants the
// epoch claim first.
func (b *Backup) Promote() *Guardian {
	if !b.promoted {
		b.promoted = true // want `replica state b\.promoted is mutated in a rep handler without a dominating epoch fence`
		b.epoch++
	}
	return b.g
}

// PromoteFenced bumps the epoch first; the latch that follows in the
// same block is fenced by it.
func (b *Backup) PromoteFenced() *Guardian {
	if !b.promoted {
		b.epoch++
		b.promoted = true
	}
	return b.g
}

// Install wires the recovered guardian outside any epoch fence; the
// exemption documents why the path is safe and suppresses the finding.
func (b *Backup) Install(g *Guardian, ack RepAck) {
	//roslint:unfenced the epoch bump in Promote published the takeover before this wiring
	b.g = g
}

// Primary is a replication sender with a deposed latch.
type Primary struct {
	epoch   uint64
	cursor  uint64
	deposed bool
}

// Ship observes a higher epoch — proof a backup was promoted — and
// drops the observation on the floor: the missing deposed latch of
// PR 6's stale-ack bug.
func (p *Primary) Ship(ack RepAck) {
	if ack.Epoch > p.epoch { // want `a higher epoch is observed here but the taken branch never latches deposition`
		return
	}
	p.cursor = ack.Durable
}

// ShipLatched records the deposition before returning.
func (p *Primary) ShipLatched(ack RepAck) {
	if ack.Epoch > p.epoch {
		p.deposed = true
		return
	}
	p.cursor = ack.Durable
}

// Server hosts a backup; installing the guardian it recovers.
type Server struct {
	g *Guardian
}

// Install swaps the served guardian after the promote call: the call
// into the rep handler is the fence (Promote bumps the epoch before
// returning), so the mutation that follows it is covered.
func (s *Server) Install(b *Backup) {
	g := b.PromoteFenced()
	s.g = g
}
