// Package epochfence enforces the replication layer's epoch
// discipline (PR 6, mirroring the thesis's ch. 5 regeneration rule
// that a representative set change must invalidate every stale copy
// before new state is exposed): code that handles rep.* messages or
// promotions mutates replica state only behind an epoch fence, and an
// observation of a higher epoch latches deposition.
//
// Two rules, both flow-sensitive over the package CFGs:
//
//  1. Inside a replication handler, every assignment to replica state
//     (an epoch-adjacent field of the receiver or of a pointer
//     parameter: epoch, cursor, acked, durable, promoted, quorumBytes,
//     gen, site, g, diverged, deposed, stale) must be dominated by an
//     epoch fence — an epoch comparison, an epoch bump or adoption
//     (itself the fence: claiming the new epoch precedes mutating
//     state under it), a branch on the stale/deposed latch, or a call
//     into a rep handler (whose body performs the fence, e.g.
//     Backup.Promote bumping the epoch before the server installs the
//     recovered guardian). This is exactly the bug shape PR 6's review
//     fixed: a backup applying an append without first comparing the
//     sender's epoch against its own.
//
//  2. A branch taken because a wire message carried a higher epoch
//     (`ack.Epoch > epoch`, `hb.Epoch > b.epoch`, or the flipped
//     spelling) must latch the observation before continuing: the
//     dominated true branch has to set a stale/deposed flag or adopt
//     the epoch. Observing deposition and dropping it on the floor is
//     how a deposed primary keeps acknowledging commits.
//
// A replication handler is a function that touches the rep protocol:
// a method named Append/Heartbeat/Snapshot/Promote on a type carrying
// an epoch field, or any function whose signature or body mentions a
// Rep* wire message (parameter, argument, result, or composite
// literal). Functions outside the protocol — constructors, the force
// scheduler, plain accessors — are not constrained.
//
// Known limitation: mutations reached through a local alias
// (`s := &p.reps[i]; s.acked = ...`) are not tracked; the fields that
// matter are mutated through the receiver or a parameter in this
// repository.
//
// Exempt a finding with //roslint:unfenced and a justification saying
// why the unfenced path is safe.
package epochfence

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the epochfence analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "epochfence",
	Doc:       "replica state mutations in rep handlers must sit behind an epoch fence; higher-epoch observations must latch deposition",
	Directive: "unfenced",
	Run:       run,
}

// ScopePackages are the packages the invariant covers: the
// replication layer itself and the server that hosts its handlers.
var ScopePackages = map[string]bool{
	"repro/internal/replog": true,
	"repro/internal/server": true,
}

// fencedFields are the replica-state field names rule 1 guards.
// Deliberately absent: liveness and statistics (alive, shipped,
// rounds, ...), which carry no replicated history.
var fencedFields = map[string]bool{
	"epoch": true, "cursor": true, "acked": true, "durable": true,
	"promoted": true, "quorumBytes": true, "gen": true, "site": true,
	"g": true, "diverged": true, "deposed": true, "stale": true,
}

// handlerNames are the rep protocol's handler method names.
var handlerNames = map[string]bool{
	"Append": true, "Heartbeat": true, "Snapshot": true, "Promote": true,
}

// latchNames are the deposition-latch field/variable names rule 2
// accepts (besides adopting the epoch itself).
var latchNames = map[string]bool{"stale": true, "deposed": true}

func run(pass *analysis.Pass) error {
	if !ScopePackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHandler(pass, fn) {
				continue
			}
			roots := paramObjects(pass, fn)
			checkBody(pass, fn.Body, roots)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body, roots)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// isHandler reports whether fn is part of the rep protocol: a handler
// method on an epoch-carrying type, or any function whose signature or
// body mentions a Rep* wire message.
func isHandler(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		sig := obj.Type().(*types.Signature)
		if sig.Recv() != nil && handlerNames[fn.Name.Name] && hasEpochField(sig.Recv().Type()) {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isRepMessage(sig.Params().At(i).Type()) {
				return true
			}
		}
	}
	touches := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if touches {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok && isRepMessage(tv.Type) {
				touches = true
			}
		case *ast.CallExpr:
			if repCall(pass, n) {
				touches = true
			}
		}
		return !touches
	})
	return touches
}

// repCall reports whether call passes or produces a Rep* wire message,
// or invokes a handler-named method on an epoch-carrying receiver
// (such a call is also a fence: the callee performs the epoch check or
// bump before returning).
func repCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isRepMessage(tv.Type) {
			return true
		}
	}
	if tv, ok := pass.TypesInfo.Types[call]; ok && isRepMessage(tv.Type) {
		return true
	}
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil && handlerNames[fn.Name()] {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && hasEpochField(sig.Recv().Type()) {
			return true
		}
	}
	return false
}

// isRepMessage reports whether t is a rep.* wire message: a named
// struct Rep<X> carrying an exported Epoch field. The shape, not the
// import path, so testdata packages can model the protocol.
func isRepMessage(t types.Type) bool {
	named := analysis.ReceiverNamed(t)
	if named == nil || len(named.Obj().Name()) <= 3 || named.Obj().Name()[:3] != "Rep" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Epoch" {
			return true
		}
	}
	return false
}

// hasEpochField reports whether t (possibly a pointer) is a struct
// with an unexported epoch field — the replication participants.
func hasEpochField(t types.Type) bool {
	named := analysis.ReceiverNamed(t)
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "epoch" {
			return true
		}
	}
	return false
}

// paramObjects collects the objects a guarded mutation may be rooted
// at: the receiver and every pointer-typed parameter.
func paramObjects(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	roots := map[types.Object]bool{}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					roots[obj] = true
				}
			}
		}
	}
	for _, f := range fn.Type.Params.List {
		for _, name := range f.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().(*types.Pointer); ok {
				roots[obj] = true
			}
		}
	}
	return roots
}

// checkBody applies both rules to one function (or function literal)
// body.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, roots map[types.Object]bool) {
	g := pass.CFG(body)
	dom := g.Dominators()

	// fenced[b] is whether block b contains a fence node (or cond).
	fenced := make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if fenceNode(pass, n) {
				fenced[b.Index] = true
				break
			}
		}
		if !fenced[b.Index] && b.Cond != nil && condMentionsLatch(b.Cond) {
			fenced[b.Index] = true
		}
	}
	dominatedByFence := func(b *cfg.Block) bool {
		for _, d := range g.Blocks {
			if fenced[d.Index] && d != b && dom.Reachable(d) && dom.Dominates(d, b) {
				return true
			}
		}
		return false
	}

	for _, b := range g.Blocks {
		if !dom.Reachable(b) {
			continue
		}
		// Rule 1: guarded mutations need a fence earlier in the block
		// or in a dominating block.
		covered := dominatedByFence(b)
		for _, n := range b.Nodes {
			for _, mut := range mutations(pass, n, roots) {
				if !covered && !fenceNode(pass, n) {
					pass.Reportf(mut.Pos(), "replica state %s is mutated in a rep handler without a dominating epoch fence (compare or bump the epoch, or branch on the deposed latch, first)", exprString(mut))
				}
			}
			if fenceNode(pass, n) {
				covered = true
			}
		}
		// Rule 2: a higher-epoch observation must latch.
		if b.Cond != nil && observesHigherEpoch(pass, b.Cond) && len(b.Succs) == 2 {
			then := b.Succs[0]
			latched := false
			for _, d := range g.Blocks {
				if !latched && dom.Reachable(d) && dom.Dominates(then, d) && blockLatches(pass, d) {
					latched = true
				}
			}
			if !latched {
				pass.Reportf(b.Cond.Pos(), "a higher epoch is observed here but the taken branch never latches deposition (set the stale/deposed flag or adopt the epoch)")
			}
		}
	}
}

// mutation is one guarded lvalue; mutations returns those written by
// node n: assignments and inc/dec whose target is a selector chain
// rooted at the receiver or a pointer parameter and ending in a fenced
// field name.
func mutations(pass *analysis.Pass, n ast.Node, roots map[types.Object]bool) []ast.Expr {
	var lhs []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		lhs = n.Lhs
	case *ast.IncDecStmt:
		lhs = []ast.Expr{n.X}
	default:
		return nil
	}
	var out []ast.Expr
	for _, e := range lhs {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || !fencedFields[sel.Sel.Name] {
			continue
		}
		root := chainRoot(sel)
		if root == nil {
			continue
		}
		if obj := pass.TypesInfo.Uses[root]; obj != nil && roots[obj] {
			out = append(out, e)
		}
	}
	return out
}

// chainRoot walks a selector/index chain down to its root identifier.
func chainRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// fenceNode reports whether n performs an epoch fence: an epoch
// comparison, an epoch write (bump or adoption), or a call into a rep
// handler.
func fenceNode(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.BinaryExpr:
			switch m.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				if mentionsEpoch(m.X) || mentionsEpoch(m.Y) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, l := range m.Lhs {
				if isEpochLvalue(l) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if isEpochLvalue(m.X) {
				found = true
			}
		case *ast.CallExpr:
			if repCall(pass, m) {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsEpoch reports whether e's subtree names an epoch (the field
// or a local copy of it).
func mentionsEpoch(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (id.Name == "epoch" || id.Name == "Epoch") {
			found = true
		}
		return !found
	})
	return found
}

func isEpochLvalue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name == "epoch"
	case *ast.SelectorExpr:
		return x.Sel.Name == "epoch"
	}
	return false
}

// condMentionsLatch reports whether a branch condition consults the
// deposition latch (a stale/deposed-named variable or field).
func condMentionsLatch(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && latchNames[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// observesHigherEpoch reports whether cond, when true, proves a wire
// message carried a strictly higher epoch than ours: a `msg.Epoch >
// ours` (or flipped `ours < msg.Epoch`) comparison in positive
// position — directly, or as a conjunct of &&. Disjuncts of || prove
// nothing on the true branch and are ignored.
func observesHigherEpoch(pass *analysis.Pass, cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LAND:
		return observesHigherEpoch(pass, b.X) || observesHigherEpoch(pass, b.Y)
	case token.GTR:
		return wireEpochSelector(pass, b.X)
	case token.LSS:
		return wireEpochSelector(pass, b.Y)
	}
	return false
}

// wireEpochSelector reports whether e is the Epoch field of a Rep*
// wire message.
func wireEpochSelector(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Epoch" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && isRepMessage(tv.Type)
}

// blockLatches reports whether block b records a deposition: an
// assignment to a stale/deposed-named lvalue, or an epoch write
// (adopting the observed epoch is the other valid reaction).
func blockLatches(pass *analysis.Pass, b *cfg.Block) bool {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if isLatchLvalue(l) || isEpochLvalue(l) {
					return true
				}
			}
		case *ast.IncDecStmt:
			if isLatchLvalue(n.X) || isEpochLvalue(n.X) {
				return true
			}
		}
	}
	return false
}

func isLatchLvalue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return latchNames[x.Name]
	case *ast.SelectorExpr:
		return latchNames[x.Sel.Name]
	}
	return false
}

// exprString renders a (short) lvalue for diagnostics.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if root := chainRoot(x); root != nil {
			return root.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return "field"
}
