package epochfence_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/epochfence"
)

const testdataPrefix = "repro/internal/analysis/epochfence/testdata/src/"

func TestEpochFence(t *testing.T) {
	// The invariant is scoped by import path; put the testdata package
	// in scope the same way the replication packages are.
	epochfence.ScopePackages[testdataPrefix+"a"] = true
	defer delete(epochfence.ScopePackages, testdataPrefix+"a")
	analysistest.Run(t, epochfence.Analyzer, "a")
}

// TestOutOfScope checks that an unscoped package is ignored entirely:
// package b carries the same bug shapes as a and nothing may be
// reported.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, epochfence.Analyzer, "b")
}

// TestReplicationLayerInScope pins the production packages into the
// fence discipline: the replication layer itself and the server that
// dispatches its handlers (and swaps the served guardian on promote).
func TestReplicationLayerInScope(t *testing.T) {
	for _, pkg := range []string{"repro/internal/replog", "repro/internal/server"} {
		if !epochfence.ScopePackages[pkg] {
			t.Fatalf("%s must stay in epochfence's ScopePackages", pkg)
		}
	}
}
