// Package wirecodec keeps the wire protocol's codecs total. The wire
// layer is the repository's only reflection-free, hand-rolled codec
// surface, so a forgotten field or op is silent until a peer
// misbehaves — PR 6's review found exactly that shape: an ack bit
// (RepAck.Applied) that one side of the protocol consulted but the
// codec path had not carried from day one, letting a refusal read as
// an applied append. Three rules:
//
//  1. For every message struct T with a codec pair (Encode<T> or
//     Append<T>, plus Decode<T>), every field of T must be mentioned
//     in both bodies. A field the encoder writes but the decoder never
//     reassembles (or vice versa) does not round-trip.
//
//  2. Every constant of an enum carrying a names table (a `xxxNames`
//     array literal keyed by the constants) must have an entry: a
//     nameless op or status prints as a bare number in traces and
//     errors exactly when it is new — when operators need the name
//     most.
//
//  3. Every Op constant must be exercised by a fuzz target: its name
//     must appear in some Fuzz* function of the package's _test.go
//     files (read syntactically; the loader itself excludes test
//     files). New ops must land in the decoder fuzz corpus with them.
//
// Exempt a finding with //roslint:wiregap and a justification (e.g. a
// reserved field deliberately absent from one side).
package wirecodec

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wirecodec analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "wirecodec",
	Doc:       "wire message fields must round-trip through both codecs; every op needs a names entry and a fuzz target",
	Directive: "wiregap",
	Run:       run,
}

// ScopePackages is the codec surface the rules cover.
var ScopePackages = map[string]bool{
	"repro/internal/wire": true,
	// The chaos workload-config codec: an episode manifest must carry
	// every knob that shaped the op stream, or a replay silently runs a
	// different workload.
	"repro/internal/chaos/workload": true,
}

func run(pass *analysis.Pass) error {
	if !ScopePackages[pass.Pkg.Path()] {
		return nil
	}
	funcs := topLevelFuncs(pass)
	checkCodecPairs(pass, funcs)
	checkNamesTables(pass)
	checkFuzzCoverage(pass)
	return nil
}

// topLevelFuncs indexes the package's function declarations by name.
func topLevelFuncs(pass *analysis.Pass) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Body != nil {
				out[fn.Name.Name] = fn
			}
		}
	}
	return out
}

// checkCodecPairs applies rule 1: each struct with an Encode/Decode
// pair mentions every field on both sides.
func checkCodecPairs(pass *analysis.Pass, funcs map[string]*ast.FuncDecl) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		enc := funcs["Encode"+name]
		if enc == nil {
			enc = funcs["Append"+name]
		}
		dec := funcs["Decode"+name]
		if enc == nil || dec == nil {
			continue
		}
		encNames := identNames(enc.Body)
		decNames := identNames(dec.Body)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !encNames[field.Name()] {
				pass.Reportf(field.Pos(), "field %s of %s is not mentioned in %s: the field does not round-trip", field.Name(), name, enc.Name.Name)
			}
			if !decNames[field.Name()] {
				pass.Reportf(field.Pos(), "field %s of %s is not mentioned in %s: the field does not round-trip", field.Name(), name, dec.Name.Name)
			}
		}
	}
}

// identNames collects every identifier name in n's subtree (selector
// fields and composite-literal keys included).
func identNames(n ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// checkNamesTables applies rule 2: for each `xxxNames` array literal
// keyed by constants of one named type, every package-scope constant
// of that type must be a key.
func checkNamesTables(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 || !strings.HasSuffix(vs.Names[0].Name, "Names") {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				checkOneTable(pass, vs.Names[0].Name, lit)
			}
		}
	}
}

func checkOneTable(pass *analysis.Pass, table string, lit *ast.CompositeLit) {
	keys := map[string]bool{}
	var enum types.Type
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(kv.Key).(*ast.Ident)
		if !ok {
			continue
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok {
			continue
		}
		keys[id.Name] = true
		if enum == nil {
			enum = c.Type()
		}
	}
	if enum == nil {
		return
	}
	for _, c := range enumConsts(pass, enum) {
		if !keys[c.Name()] {
			pass.Reportf(c.Pos(), "%s has no %s entry: the value would print as a bare number", c.Name(), table)
		}
	}
}

// enumConsts returns the package-scope constants of type t, sorted by
// declaration position.
func enumConsts(pass *analysis.Pass, t types.Type) []*types.Const {
	scope := pass.Pkg.Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), t) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// checkFuzzCoverage applies rule 3: every Op constant appears in some
// Fuzz* function of the package's _test.go files.
func checkFuzzCoverage(pass *analysis.Pass) {
	opObj, ok := pass.Pkg.Scope().Lookup("Op").(*types.TypeName)
	if !ok {
		return
	}
	ops := enumConsts(pass, opObj.Type())
	if len(ops) == 0 {
		return
	}
	fuzzed, found := fuzzIdents(pass.Dir)
	if !found {
		for _, c := range ops {
			pass.Reportf(c.Pos(), "%s has no fuzz target: this package declares ops but no _test.go defines a Fuzz* function", c.Name())
		}
		return
	}
	for _, c := range ops {
		if !fuzzed[c.Name()] {
			pass.Reportf(c.Pos(), "%s is not exercised by any fuzz target in this package's _test.go files: add a decoder seed for it", c.Name())
		}
	}
}

// fuzzIdents parses dir's _test.go files (syntax only) and collects
// every identifier mentioned inside Fuzz* functions. found reports
// whether any fuzz function exists at all.
func fuzzIdents(dir string) (idents map[string]bool, found bool) {
	idents = map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return idents, false
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !strings.HasPrefix(fn.Name.Name, "Fuzz") {
				continue
			}
			found = true
			for name := range identNames(fn.Body) {
				idents[name] = true
			}
		}
	}
	return idents, found
}
