// Package b carries a codec gap but is not in ScopePackages: nothing
// may be reported.
package b

type RepAck struct {
	Epoch   uint64
	Applied bool
}

func EncodeRepAck(a RepAck) []byte {
	if a.Applied {
		return []byte{byte(a.Epoch), 1}
	}
	return []byte{byte(a.Epoch), 0}
}

func DecodeRepAck(b []byte) (RepAck, error) {
	return RepAck{Epoch: uint64(b[0])}, nil
}
