// Package a models the wire package's codec shapes for wirecodec.
package a

// Op identifies a request's operation.
type Op uint8

const (
	OpPing Op = iota + 1
	OpInvoke
	OpGhost // want `OpGhost has no opNames entry` `OpGhost is not exercised by any fuzz target`
)

var opNames = [...]string{
	OpPing:   "ping",
	OpInvoke: "invoke",
}

// RepAck is the ack whose Applied bit PR 6's review chased: the
// decoder below forgets it, so a refusal reads as an applied append.
type RepAck struct {
	Epoch   uint64
	Durable uint64
	Applied bool // want `field Applied of RepAck is not mentioned in DecodeRepAck`
}

// EncodeRepAck writes all three fields.
func EncodeRepAck(a RepAck) []byte {
	out := []byte{byte(a.Epoch), byte(a.Durable)}
	if a.Applied {
		return append(out, 1)
	}
	return append(out, 0)
}

// DecodeRepAck reassembles only two of them.
func DecodeRepAck(b []byte) (RepAck, error) {
	var a RepAck
	a.Epoch = uint64(b[0])
	a.Durable = uint64(b[1])
	return a, nil
}

// RepHeartbeat round-trips completely: no findings.
type RepHeartbeat struct {
	Epoch   uint64
	Durable uint64
}

func EncodeRepHeartbeat(h RepHeartbeat) []byte {
	return []byte{byte(h.Epoch), byte(h.Durable)}
}

func DecodeRepHeartbeat(b []byte) (RepHeartbeat, error) {
	return RepHeartbeat{Epoch: uint64(b[0]), Durable: uint64(b[1])}, nil
}

// RepStatus carries a reserved byte the decoder deliberately ignores;
// the exemption documents the asymmetry.
type RepStatus struct {
	Epoch uint64
	//roslint:wiregap reserved padding: encoded as zero, deliberately ignored on decode
	Reserved uint8
}

func EncodeRepStatus(s RepStatus) []byte {
	_ = s.Reserved
	return []byte{byte(s.Epoch), 0}
}

func DecodeRepStatus(b []byte) (RepStatus, error) {
	return RepStatus{Epoch: uint64(b[0])}, nil
}

// Naked has no codec pair: not constrained.
type Naked struct {
	Hidden int
}
