package a

import "testing"

// FuzzDecodeRepAck seeds the decoder corpus; it mentions OpPing and
// OpInvoke but not OpGhost.
func FuzzDecodeRepAck(f *testing.F) {
	f.Add(EncodeRepAck(RepAck{Epoch: uint64(OpPing), Applied: true}))
	f.Add([]byte{byte(OpInvoke)})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		_, _ = DecodeRepAck(data)
	})
}
