package wirecodec_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wirecodec"
)

const testdataPrefix = "repro/internal/analysis/wirecodec/testdata/src/"

func TestWireCodec(t *testing.T) {
	wirecodec.ScopePackages[testdataPrefix+"a"] = true
	defer delete(wirecodec.ScopePackages, testdataPrefix+"a")
	analysistest.Run(t, wirecodec.Analyzer, "a")
}

// TestOutOfScope checks that an unscoped package is ignored entirely.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, wirecodec.Analyzer, "b")
}

// TestWireInScope pins the production wire package into the codec
// rules: every message field must round-trip and every op must stay
// named and fuzzed.
func TestWireInScope(t *testing.T) {
	if !wirecodec.ScopePackages["repro/internal/wire"] {
		t.Fatal("repro/internal/wire must stay in wirecodec's ScopePackages")
	}
}

// TestWorkloadConfigInScope pins the chaos workload-config codec into
// the rules: a Config field that does not round-trip silently replays a
// different workload than the episode manifest claims.
func TestWorkloadConfigInScope(t *testing.T) {
	if !wirecodec.ScopePackages["repro/internal/chaos/workload"] {
		t.Fatal("repro/internal/chaos/workload must stay in wirecodec's ScopePackages")
	}
}
