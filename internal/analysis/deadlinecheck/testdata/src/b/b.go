// Package b does unguarded conn I/O but is not in ScopePackages:
// nothing may be reported.
package b

import "net"

func reply(c net.Conn, buf []byte) error {
	_, err := c.Write(buf)
	return err
}
