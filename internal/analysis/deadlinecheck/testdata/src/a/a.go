// Package a models the serving layer's conn-handling shapes for
// deadlinecheck.
package a

import (
	"net"
	"time"
)

// reply writes with no deadline anywhere: flagged.
func reply(c net.Conn, buf []byte) error {
	_, err := c.Write(buf) // want `net\.Conn write on c is not dominated by SetWriteDeadline/SetDeadline`
	return err
}

// replyGuarded sets the write deadline first: covered.
func replyGuarded(c net.Conn, buf []byte) error {
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	_, err := c.Write(buf)
	return err
}

// readGuardedFull covers a read with the full SetDeadline.
func readGuardedFull(c net.Conn, buf []byte) error {
	_ = c.SetDeadline(time.Now().Add(time.Second))
	_, err := c.Read(buf)
	return err
}

// readWrongKind sets only the write deadline before a read: flagged.
func readWrongKind(c net.Conn, buf []byte) error {
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	_, err := c.Read(buf) // want `net\.Conn read on c is not dominated by SetReadDeadline/SetDeadline`
	return err
}

// maybeGuarded sets the deadline on one branch only; the write is not
// dominated: flagged.
func maybeGuarded(c net.Conn, slow bool, buf []byte) error {
	if slow {
		_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	}
	_, err := c.Write(buf) // want `net\.Conn write on c is not dominated by SetWriteDeadline/SetDeadline`
	return err
}

// tooLate sets the deadline after the read: flagged.
func tooLate(c net.Conn, buf []byte) error {
	_, err := c.Read(buf) // want `net\.Conn read on c is not dominated by SetReadDeadline/SetDeadline`
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	return err
}

// wrap is the server's conn shape: the net.Conn lives behind a field.
type wrap struct {
	nc net.Conn
}

// loopGuarded re-arms the read deadline each iteration before the
// framed read — the server read-loop shape: covered.
func (w *wrap) loopGuarded(buf []byte) error {
	for {
		_ = w.nc.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := ReadFull(w.nc, buf); err != nil {
			return err
		}
	}
}

// crossChain sets the deadline on one conn and writes another: the
// chains differ, so the write is flagged.
func (w *wrap) crossChain(other net.Conn, buf []byte) error {
	_ = w.nc.SetWriteDeadline(time.Now().Add(time.Second))
	_, err := other.Write(buf) // want `net\.Conn write on other is not dominated by SetWriteDeadline/SetDeadline`
	return err
}

// ReadFull loops a read for callers; the exemption names the deadline
// owner and suppresses the finding.
func ReadFull(c net.Conn, buf []byte) (int, error) {
	//roslint:nodeadline callers arm the deadline covering the whole framed exchange
	return c.Read(buf)
}

// pump hands a bare conn to a reading helper with no deadline: the
// call-with-conn-argument form is flagged too.
func pump(c net.Conn, buf []byte) (int, error) {
	return ReadFull(c, buf) // want `net\.Conn read on c is not dominated by SetReadDeadline/SetDeadline`
}
