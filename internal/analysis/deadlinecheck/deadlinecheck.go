// Package deadlinecheck keeps the serving layer's network I/O bounded:
// every read or write on a net.Conn must be dominated, on the control
// flow graph, by a deadline that covers it. The thesis's fail-stop
// model (§1.2) turns silent peers into observed failures only if every
// blocking call has a timeout — a single unguarded Read in the server's
// read loop or the client's exchange turns a dead TCP peer into a
// goroutine leak that drain can never finish.
//
// An operation is a Read/Write method call on a net.Conn (or any type
// implementing it), or a call passing a net.Conn to a Read*/Write*
// function (wire.ReadFrame, wire.WriteFrame, io.ReadFull, ...). It is
// guarded when a SetReadDeadline (reads), SetWriteDeadline (writes),
// or SetDeadline (either) on the same connection chain appears earlier
// in its basic block or in a strictly dominating block — so a deadline
// set on only one branch, or after the call, does not count.
//
// Connections reached through calls or index expressions have no
// stable chain to match deadlines against and are skipped; the serving
// layer names its conns c.nc / nc directly.
//
// Exempt a finding with //roslint:nodeadline and a justification
// saying who owns the deadline covering the call.
package deadlinecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the deadlinecheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "deadlinecheck",
	Doc:       "net.Conn reads/writes must be dominated by a matching deadline",
	Directive: "nodeadline",
	Run:       run,
}

// ScopePackages are the packages the invariant covers: the two sides
// of the TCP serving layer.
var ScopePackages = map[string]bool{
	"repro/internal/server": true,
	"repro/internal/client": true,
}

// opKind is the deadline flavor an operation needs.
type opKind int

const (
	kindRead opKind = iota
	kindWrite
	kindBoth // only a full SetDeadline covers it
)

// connOp is one guarded conn operation found in a block.
type connOp struct {
	call  *ast.CallExpr
	chain string
	kind  opKind
}

func run(pass *analysis.Pass) error {
	if !ScopePackages[pass.Pkg.Path()] {
		return nil
	}
	iface := connInterface(pass)
	if iface == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body, iface)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body, iface)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// connInterface resolves net.Conn against the package's imports.
func connInterface(pass *analysis.Pass) *types.Interface {
	obj := analysis.TypeByName(pass.Pkg, "net", "Conn")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, iface *types.Interface) {
	g := pass.CFG(body)
	dom := g.Dominators()

	// guards[b] is the set of "chain\x00kind" deadline facts block b
	// establishes; kind is the deadline method name.
	guards := make([]map[string]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		guards[b.Index] = map[string]bool{}
		for _, n := range b.Nodes {
			collectDeadlines(pass, n, iface, guards[b.Index])
		}
	}

	covered := func(b *cfg.Block, upto int, op connOp) bool {
		ok := func(set map[string]bool) bool {
			if set[op.chain+"\x00SetDeadline"] {
				return true
			}
			switch op.kind {
			case kindRead:
				return set[op.chain+"\x00SetReadDeadline"]
			case kindWrite:
				return set[op.chain+"\x00SetWriteDeadline"]
			}
			return false
		}
		early := map[string]bool{}
		for i := 0; i < upto; i++ {
			collectDeadlines(pass, b.Nodes[i], iface, early)
		}
		if ok(early) {
			return true
		}
		for _, d := range g.Blocks {
			if d != b && dom.Reachable(d) && dom.Dominates(d, b) && ok(guards[d.Index]) {
				return true
			}
		}
		return false
	}

	for _, b := range g.Blocks {
		if !dom.Reachable(b) {
			continue
		}
		for i, n := range b.Nodes {
			for _, op := range connOps(pass, n, iface) {
				if covered(b, i, op) {
					continue
				}
				verb, deadline := "read", "SetReadDeadline"
				switch op.kind {
				case kindWrite:
					verb, deadline = "write", "SetWriteDeadline"
				case kindBoth:
					verb, deadline = "read/write", "SetDeadline"
				}
				pass.Reportf(op.call.Pos(), "net.Conn %s on %s is not dominated by %s/SetDeadline: a dead peer blocks this path forever", verb, op.chain, deadline)
			}
		}
	}
}

// deadlineMethods are the net.Conn timeout setters.
var deadlineMethods = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// collectDeadlines records every deadline call in n's subtree into
// facts as "chain\x00method".
func collectDeadlines(pass *analysis.Pass, n ast.Node, iface *types.Interface, facts map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !deadlineMethods[sel.Sel.Name] {
			return true
		}
		if !implementsConn(pass, sel.X, iface) {
			return true
		}
		if chain := chainString(sel.X); chain != "" {
			facts[chain+"\x00"+sel.Sel.Name] = true
		}
		return true
	})
}

// connOps returns the guarded conn operations in n's subtree: Read and
// Write method calls on a conn, and Read*/Write* function calls passed
// a conn.
func connOps(pass *analysis.Pass, n ast.Node, iface *types.Interface) []connOp {
	var out []connOp
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // analyzed separately
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if (fun.Sel.Name == "Read" || fun.Sel.Name == "Write") && implementsConn(pass, fun.X, iface) {
				if chain := chainString(fun.X); chain != "" {
					kind := kindRead
					if fun.Sel.Name == "Write" {
						kind = kindWrite
					}
					out = append(out, connOp{call: call, chain: chain, kind: kind})
				}
				return true
			}
		}
		name := calleeName(call)
		hasRead := strings.Contains(name, "Read")
		hasWrite := strings.Contains(name, "Write")
		if !hasRead && !hasWrite {
			return true
		}
		for _, arg := range call.Args {
			if !implementsConn(pass, arg, iface) {
				continue
			}
			chain := chainString(arg)
			if chain == "" {
				continue
			}
			kind := kindBoth
			switch {
			case hasRead && !hasWrite:
				kind = kindRead
			case hasWrite && !hasRead:
				kind = kindWrite
			}
			out = append(out, connOp{call: call, chain: chain, kind: kind})
		}
		return true
	})
	return out
}

// calleeName is the called function's bare name ("" for indirect
// calls through non-selector expressions).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// implementsConn reports whether e's static type satisfies net.Conn.
func implementsConn(pass *analysis.Pass, e ast.Expr, iface *types.Interface) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// chainString renders a selector chain ("c.nc"); "" when the
// expression routes through anything but plain selections.
func chainString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := chainString(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	}
	return ""
}
