package deadlinecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/deadlinecheck"
)

const testdataPrefix = "repro/internal/analysis/deadlinecheck/testdata/src/"

func TestDeadlineCheck(t *testing.T) {
	deadlinecheck.ScopePackages[testdataPrefix+"a"] = true
	defer delete(deadlinecheck.ScopePackages, testdataPrefix+"a")
	analysistest.Run(t, deadlinecheck.Analyzer, "a")
}

// TestOutOfScope checks that an unscoped package is ignored entirely.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, deadlinecheck.Analyzer, "b")
}

// TestServingLayerInScope pins both sides of the TCP serving layer
// into the deadline discipline. The shard route/handoff/2PC RPCs ride
// the same Client.Do and server conn loop, so keeping these two
// packages scoped keeps every routing round-trip deadline-guarded.
func TestServingLayerInScope(t *testing.T) {
	for _, pkg := range []string{"repro/internal/server", "repro/internal/client"} {
		if !deadlinecheck.ScopePackages[pkg] {
			t.Fatalf("%s must stay in deadlinecheck's ScopePackages", pkg)
		}
	}
}
