// Package a exercises forcebarrier: outcome entries written with the
// buffered Write are flagged; forced writes, data entries, and
// justified exemptions are not.
package a

import (
	"repro/internal/logrec"
	"repro/internal/stablelog"
)

// An outcome entry buffered directly: flagged.
func commitBuffered(l *stablelog.Log, f logrec.Format) error {
	_, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitted})) // want `KindCommitted entry written with buffered Write`
	return err
}

// The entry traced through a local variable: still flagged.
func prepareBuffered(l *stablelog.Log, f logrec.Format) error {
	e := &logrec.Entry{Kind: logrec.KindPrepared}
	_, err := l.Write(logrec.Encode(f, e)) // want `KindPrepared entry written with buffered Write`
	return err
}

// Data entries may buffer; the force happens at the outcome write.
func dataBuffered(l *stablelog.Log, f logrec.Format) error {
	_, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindData, Value: []byte("x")}))
	return err
}

// ForceWrite is the correct call for an outcome: not flagged.
func commitForced(l *stablelog.Log, f logrec.Format) error {
	_, err := l.ForceWrite(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitted}))
	return err
}

// A deliberate buffered outcome with a justification: suppressed.
func committingCovered(l *stablelog.Log, f logrec.Format) error {
	//roslint:unforced the generation switch forces the whole log before this entry matters
	_, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitting}))
	return err
}

// The group-commit split — Write then ForceTo on the bound LSN — is a
// legal force path: not flagged.
func commitGroup(l *stablelog.Log, f logrec.Format) error {
	lsn, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitted}))
	if err != nil {
		return err
	}
	return l.ForceTo(lsn)
}

// The split with table work between append and await, as the writers
// do: still recognized.
func prepareGroup(l *stablelog.Log, f logrec.Format, note func()) error {
	e := &logrec.Entry{Kind: logrec.KindPrepared}
	lsn, err := l.Write(logrec.Encode(f, e))
	if err != nil {
		return err
	}
	note()
	return l.ForceTo(lsn)
}

// Discarding the LSN leaves nothing to await: flagged.
func commitDiscarded(l *stablelog.Log, f logrec.Format) error {
	_, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitted})) // want `KindCommitted entry written with buffered Write`
	if err != nil {
		return err
	}
	return l.Force()
}

// ForceTo on a different LSN does not cover this entry: flagged.
func abortWrongLSN(l *stablelog.Log, f logrec.Format, other stablelog.LSN) error {
	lsn, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindAborted})) // want `KindAborted entry written with buffered Write`
	if err != nil {
		return err
	}
	_ = lsn
	return l.ForceTo(other)
}

// ForceTo reached on only one branch: the other path acknowledges an
// unforced outcome. Flagged — the PR 2 analyzer accepted a ForceTo
// anywhere in the function.
func commitHalfForced(l *stablelog.Log, f logrec.Format, noisy bool) error {
	lsn, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitted})) // want `KindCommitted entry written with buffered Write`
	if err != nil {
		return err
	}
	if noisy {
		return l.ForceTo(lsn)
	}
	return nil
}

// ForceTo on every branch: not flagged.
func commitBothBranches(l *stablelog.Log, f logrec.Format, slow bool) error {
	lsn, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitted}))
	if err != nil {
		return err
	}
	if slow {
		return l.ForceTo(lsn)
	}
	return l.ForceTo(lsn)
}

// The err == nil spelling of the guard: the error path returns without
// forcing, the success path forces. Not flagged.
func commitErrEq(l *stablelog.Log, f logrec.Format) error {
	lsn, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitted}))
	if err == nil {
		return l.ForceTo(lsn)
	}
	return err
}

// A force awaited inside a retry loop still covers every exiting path:
// not flagged.
func commitLoop(l *stablelog.Log, f logrec.Format) error {
	lsn, err := l.Write(logrec.Encode(f, &logrec.Entry{Kind: logrec.KindCommitted}))
	if err != nil {
		return err
	}
	for {
		if ferr := l.ForceTo(lsn); ferr == nil {
			return nil
		}
	}
}
