package forcebarrier_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/forcebarrier"
)

func TestForceBarrier(t *testing.T) {
	analysistest.Run(t, forcebarrier.Analyzer, "a")
}
