// Package forcebarrier flags outcome log entries written with the
// buffered Write instead of ForceWrite.
//
// Thesis §3.1/§4.1: an action's outcome entries (prepared, committed,
// aborted, committing, done — and housekeeping's committed_ss) must be
// *forced* to the stable log before the action is acknowledged; a
// buffered write can vanish in a crash, acknowledging a commit that
// recovery will then undo. The analyzer finds calls to
// (*stablelog.Log).Write whose payload is a logrec.Encode of an entry
// whose Kind is an outcome kind, following the entry through simple
// local assignments.
//
// Two force paths are legal. ForceWrite forces the entry itself. The
// group-commit split — `lsn, err := log.Write(...)` followed by
// `log.ForceTo(lsn)` — appends the entry and then blocks until a
// (possibly shared) force covers it. The split is checked
// path-sensitively on the function's control-flow graph
// (internal/analysis/cfg): from the Write, *every* path to a return
// must pass a ForceTo on the Write's own bound LSN variable before the
// function can acknowledge. Paths entered by observing the Write's own
// error (the `if err != nil` arm) are exempt — a failed append left
// nothing durable to await. A ForceTo on some other LSN, or one
// reached only on some branches, does not cover the entry and is
// flagged. (The PR 2 version accepted a ForceTo anywhere in the
// function, so a force hidden behind an unrelated branch slipped by.)
//
// Deliberately unforced outcome writes (e.g. housekeeping's
// committed_ss, which the generation switch forces later) carry
// //roslint:unforced with a justification naming the force that covers
// them.
package forcebarrier

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the forcebarrier analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "forcebarrier",
	Doc:       "outcome log entries must be forced (ForceWrite), not buffered (Write)",
	Directive: "unforced",
	Run:       run,
}

// forcedKinds are the logrec.Kind constants naming outcome entries that
// must hit stable storage before the action acknowledges.
var forcedKinds = map[string]bool{
	"KindPrepared":    true,
	"KindCommitted":   true,
	"KindAborted":     true,
	"KindCommitting":  true,
	"KindDone":        true,
	"KindCommittedSS": true,
}

const (
	logrecPath    = "repro/internal/logrec"
	stablelogPath = "repro/internal/stablelog"
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn)
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Name() != "Write" ||
			!analysis.IsMethodOf(callee, stablelogPath, "Log") || len(call.Args) != 1 {
			return true
		}
		kind := payloadKind(pass, fn, call.Args[0])
		if forcedKinds[kind] && !forcedViaForceTo(pass, fn, call) {
			pass.Reportf(call.Pos(),
				"%s entry written with buffered Write and never awaited; outcome entries must be forced before the action acknowledges (use ForceWrite, or ForceTo on the Write's LSN, thesis §3.1/§4.1)",
				kind)
		}
		return true
	})
}

// forcedViaForceTo reports whether the Write call's LSN result is bound
// to a variable that every subsequent path passes to
// (*stablelog.Log).ForceTo before returning — the group-commit
// append/await split, which guarantees the entry is durable before the
// function acknowledges. Paths entered by observing the Write's own
// error are exempt: a failed append left nothing durable to await.
func forcedViaForceTo(pass *analysis.Pass, fn *ast.FuncDecl, write *ast.CallExpr) bool {
	// Find the `lsn, err := log.Write(...)` assignment binding the LSN
	// (and the error, for the err-path exemption).
	var lsnObj, errObj types.Object
	var bind *ast.AssignStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || ast.Unparen(assign.Rhs[0]) != write || len(assign.Lhs) != 2 {
			return true
		}
		bind = assign
		lsnObj = identObj(pass, assign.Lhs[0])
		errObj = identObj(pass, assign.Lhs[1])
		return false
	})
	if lsnObj == nil {
		return false
	}
	forces := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Name() != "ForceTo" ||
				!analysis.IsMethodOf(callee, stablelogPath, "Log") || len(call.Args) != 1 {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == lsnObj {
				found = true
			}
			return !found
		})
		return found
	}

	// Locate the binding statement in the CFG. A write inside a nested
	// function literal has no node in the enclosing graph; fall back to
	// "a ForceTo anywhere covers it" for that rare shape.
	g := pass.CFG(fn.Body)
	var wb *cfg.Block
	wi := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(bind) || containsNode(n, bind) {
				wb, wi = b, i
			}
		}
	}
	if wb == nil {
		return forces(fn.Body)
	}
	// Forced within the rest of the Write's own block?
	for _, n := range wb.Nodes[wi+1:] {
		if forces(n) {
			return true
		}
	}
	// Backward may-analysis: can the end of a block reach Exit without
	// passing a ForceTo on this LSN? Edges taken by observing the
	// Write's error are pruned.
	res := cfg.Solve(g, cfg.Analysis[bool]{
		Dir:      cfg.Backward,
		Boundary: true,
		Transfer: func(b *cfg.Block, in bool) bool {
			for _, n := range b.Nodes {
				if forces(n) {
					return false
				}
			}
			return in
		},
		Meet:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
		EdgeOK: func(from, to *cfg.Block) bool {
			return !errGuardEdge(pass, from, to, errObj)
		},
	})
	unforcedFromEnd, ok := res.In[wb]
	return !(ok && unforcedFromEnd)
}

// errGuardEdge reports whether from→to is the edge taken when the
// Write's own error is non-nil: the true edge of `err != nil` or the
// false edge of `err == nil`.
func errGuardEdge(pass *analysis.Pass, from, to *cfg.Block, errObj types.Object) bool {
	if errObj == nil || from.Cond == nil {
		return false
	}
	bin, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok && pass.TypesInfo.Uses[x] == errObj {
		id = x
	} else if y, ok := ast.Unparen(bin.Y).(*ast.Ident); ok && pass.TypesInfo.Uses[y] == errObj {
		id = y
	}
	if id == nil {
		return false
	}
	switch bin.Op {
	case token.NEQ: // err != nil: error path is the true edge
		return len(from.Succs) > 0 && to == from.Succs[0]
	case token.EQL: // err == nil: error path is the false edge
		return len(from.Succs) > 1 && to == from.Succs[1]
	}
	return false
}

// containsNode reports whether node's subtree (function literals
// pruned) contains target.
func containsNode(node, target ast.Node) bool {
	found := false
	ast.Inspect(node, func(x ast.Node) bool {
		if found {
			return false
		}
		if x == target {
			found = true
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	return found
}

// identObj resolves a (non-blank) identifier expression to its object.
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// payloadKind resolves the logrec.Kind constant name of the entry a
// Write payload encodes, or "" if it cannot be determined statically.
func payloadKind(pass *analysis.Pass, fn *ast.FuncDecl, payload ast.Expr) string {
	call, ok := ast.Unparen(payload).(*ast.CallExpr)
	if !ok {
		return ""
	}
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Name() != "Encode" || callee.Pkg() == nil ||
		callee.Pkg().Path() != logrecPath || len(call.Args) != 2 {
		return ""
	}
	return entryKind(pass, fn, call.Args[1])
}

// entryKind resolves the Kind field of an entry expression: a
// (&-wrapped) logrec.Entry composite literal, or an identifier assigned
// one within the same function.
func entryKind(pass *analysis.Pass, fn *ast.FuncDecl, entry ast.Expr) string {
	entry = ast.Unparen(entry)
	if u, ok := entry.(*ast.UnaryExpr); ok {
		entry = ast.Unparen(u.X)
	}
	switch e := entry.(type) {
	case *ast.CompositeLit:
		return litKind(pass, e)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return ""
		}
		return identKind(pass, fn, obj)
	}
	return ""
}

// identKind scans fn for the single assignment of a composite Entry
// literal to obj; multiple or non-literal assignments yield "".
func identKind(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) string {
	kind, n := "", 0
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		assign, ok := node.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[id] != obj && pass.TypesInfo.Uses[id] != obj {
				continue
			}
			n++
			rhs := ast.Unparen(assign.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = ast.Unparen(u.X)
			}
			if lit, ok := rhs.(*ast.CompositeLit); ok {
				kind = litKind(pass, lit)
			}
		}
		return true
	})
	if n != 1 {
		return ""
	}
	return kind
}

// litKind returns the Kind constant name from a logrec.Entry composite
// literal, or "".
func litKind(pass *analysis.Pass, lit *ast.CompositeLit) string {
	named := analysis.ReceiverNamed(pass.TypesInfo.Types[lit].Type)
	if named == nil || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != logrecPath || named.Obj().Name() != "Entry" {
		return ""
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		switch v := ast.Unparen(kv.Value).(type) {
		case *ast.SelectorExpr:
			if c, ok := pass.TypesInfo.Uses[v.Sel].(*types.Const); ok && c.Pkg().Path() == logrecPath {
				return c.Name()
			}
		case *ast.Ident:
			if c, ok := pass.TypesInfo.Uses[v].(*types.Const); ok && c.Pkg() != nil && c.Pkg().Path() == logrecPath {
				return c.Name()
			}
		}
	}
	return ""
}
