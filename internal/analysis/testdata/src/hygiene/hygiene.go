// Package hygiene exercises the framework's directive handling: a
// justified exemption suppresses, a bare exemption suppresses but is
// reported for its missing justification, a stale exemption is
// reported as unused, and a misspelled directive name is caught by the
// driver's unknown-directive scan.
package hygiene

func flagme() {}

func flagged() {
	flagme()
}

func suppressed() {
	//roslint:testdir justified: exercised by the framework test
	flagme()
}

func bare() {
	//roslint:testdir
	flagme()
}

func stale() {
	//roslint:testdir this exemption suppresses nothing
}

//roslint:tpyo a misspelled directive name must not silently exempt
func typoed() {
	flagme()
}
