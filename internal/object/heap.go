package object

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/value"
)

// Heap is a guardian's volatile memory for recoverable objects: the map
// from UID to object that the recovery system rebuilds after a crash.
// The heap also owns the guardian's stable-variables object — the
// single recoverable object with a predefined UID through which all
// stable state is reachable (§3.3.3.2).
type Heap struct {
	mu   sync.RWMutex
	objs map[ids.UID]Recoverable
}

// NewHeap returns an empty heap.
func NewHeap() *Heap {
	return &Heap{objs: make(map[ids.UID]Recoverable)}
}

// Register adds obj to the heap. Registering a UID twice panics: UIDs
// are never reused (§3.2).
func (h *Heap) Register(obj Recoverable) {
	h.mu.Lock()
	defer h.mu.Unlock()
	uid := obj.UID()
	if _, dup := h.objs[uid]; dup {
		panic(fmt.Sprintf("object: duplicate registration of %v", uid))
	}
	h.objs[uid] = obj
}

// Lookup returns the object with the given UID.
func (h *Heap) Lookup(uid ids.UID) (Recoverable, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	o, ok := h.objs[uid]
	return o, ok
}

// StableVars returns the stable-variables root object, if created.
func (h *Heap) StableVars() (*Atomic, bool) {
	o, ok := h.Lookup(ids.StableVarsUID)
	if !ok {
		return nil, false
	}
	a, ok := o.(*Atomic)
	return a, ok
}

// Len returns the number of registered objects.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.objs)
}

// UIDs returns all registered UIDs in ascending order.
func (h *Heap) UIDs() []ids.UID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]ids.UID, 0, len(h.objs))
	for u := range h.objs {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxUID returns the largest registered UID (0 if the heap is empty);
// recovery resets the stable counter to it (§3.4.4 step 3).
func (h *Heap) MaxUID() ids.UID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var max ids.UID
	for u := range h.objs {
		if u > max {
			max = u
		}
	}
	return max
}

// Traverse walks the graph of recoverable objects reachable from the
// stable variables, calling visit once per reachable recoverable
// object. For atomic objects the base version is followed (the
// committed state); for mutex objects the current version. This is the
// walk used to rebuild the accessibility set (§3.4.1 step 4) and to
// take a snapshot (§5.2).
func (h *Heap) Traverse(visit func(Recoverable)) {
	root, ok := h.StableVars()
	if !ok {
		return
	}
	seen := make(map[ids.UID]bool)
	var walk func(o Recoverable)
	walk = func(o Recoverable) {
		if seen[o.UID()] {
			return
		}
		seen[o.UID()] = true
		visit(o)
		var v value.Value
		switch x := o.(type) {
		case *Atomic:
			v = x.Base()
		case *Mutex:
			v = x.Current()
		}
		if v == nil {
			return
		}
		value.Refs(v, func(ref value.Obj) {
			if target, ok := ref.(Recoverable); ok {
				walk(target)
			} else if obj, ok := h.Lookup(ref.UID()); ok {
				walk(obj)
			}
		})
	}
	walk(root)
}

// AccessibleSet computes the set of UIDs reachable from the stable
// variables: the ground truth that the accessibility set approximates.
func (h *Heap) AccessibleSet() *AccessSet {
	as := NewAccessSet()
	h.Traverse(func(o Recoverable) { as.Add(o.UID()) })
	return as
}

// AccessSet is the accessibility set (AS) of §3.3.3.2: the UIDs of
// objects known to be accessible from the guardian's stable variables.
// It may over-approximate (objects made unreachable keep their entries
// until the set is trimmed).
type AccessSet struct {
	mu   sync.Mutex
	uids map[ids.UID]bool
}

// NewAccessSet returns an empty accessibility set.
func NewAccessSet() *AccessSet {
	return &AccessSet{uids: make(map[ids.UID]bool)}
}

// Add inserts uid.
func (s *AccessSet) Add(uid ids.UID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.uids[uid] = true
}

// Contains reports whether uid is in the set.
func (s *AccessSet) Contains(uid ids.UID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uids[uid]
}

// Len returns the set size.
func (s *AccessSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.uids)
}

// Intersect replaces s with s ∩ other. Trimming the AS intersects the
// freshly traversed set with the old one so that objects made newly
// accessible *during* the traversal — which must still be treated as
// newly accessible by the writing algorithm — are not retained
// (§3.3.3.2).
func (s *AccessSet) Intersect(other *AccessSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	for u := range s.uids {
		if !other.uids[u] {
			delete(s.uids, u)
		}
	}
}

// ReplaceWith replaces s's membership with other's (used when a
// snapshot installs the freshly computed accessibility set).
func (s *AccessSet) ReplaceWith(other *AccessSet) {
	other.mu.Lock()
	uids := make(map[ids.UID]bool, len(other.uids))
	for u := range other.uids {
		uids[u] = true
	}
	other.mu.Unlock()
	s.mu.Lock()
	s.uids = uids
	s.mu.Unlock()
}

// UIDs returns the members in ascending order.
func (s *AccessSet) UIDs() []ids.UID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ids.UID, 0, len(s.uids))
	for u := range s.uids {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MOS is the modified objects set passed to prepare (§2.3): the
// recoverable objects modified by one action. (Newly created objects
// need not be listed; the writing algorithm discovers them as newly
// accessible, §3.3.3.2.)
type MOS []Recoverable

// PAT is the prepared actions table (§3.3.3.2): the set of actions that
// have prepared at this guardian and not yet committed or aborted.
type PAT struct {
	mu  sync.Mutex
	set map[ids.ActionID]bool
}

// NewPAT returns an empty prepared actions table.
func NewPAT() *PAT {
	return &PAT{set: make(map[ids.ActionID]bool)}
}

// Add records that aid has prepared.
func (p *PAT) Add(aid ids.ActionID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.set[aid] = true
}

// Remove forgets aid (called when the action commits or aborts).
func (p *PAT) Remove(aid ids.ActionID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.set, aid)
}

// Contains reports whether aid has prepared.
func (p *PAT) Contains(aid ids.ActionID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.set[aid]
}

// Actions returns the prepared actions in unspecified order.
func (p *PAT) Actions() []ids.ActionID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ids.ActionID, 0, len(p.set))
	for aid := range p.set {
		out = append(out, aid)
	}
	return out
}

// Len returns the number of prepared actions.
func (p *PAT) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.set)
}
