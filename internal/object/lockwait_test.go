package object

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/value"
)

func TestAcquireWriteWaitGrantsAfterRelease(t *testing.T) {
	a := NewAtomic(5, value.Int(0), ids.NoAction)
	if err := a.AcquireWrite(t1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- a.AcquireWriteWait(t2, 2*time.Second)
	}()
	// Give the waiter time to block, then release.
	time.Sleep(10 * time.Millisecond)
	a.Commit(t1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
	if a.Writer() != t2 {
		t.Fatalf("writer = %v, want %v", a.Writer(), t2)
	}
}

func TestAcquireWriteWaitTimesOut(t *testing.T) {
	a := NewAtomic(5, value.Int(0), ids.NoAction)
	if err := a.AcquireWrite(t1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.AcquireWriteWait(t2, 30*time.Millisecond)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("timed out too early")
	}
	// The holder is unaffected.
	if a.Writer() != t1 {
		t.Fatalf("writer = %v", a.Writer())
	}
}

func TestAcquireReadWaitBehindWriter(t *testing.T) {
	a := NewAtomic(5, value.Int(0), ids.NoAction)
	if err := a.AcquireWrite(t1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- a.AcquireReadWait(t2, 2*time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	a.Abort(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !a.HoldsRead(t2) {
		t.Fatal("read lock not granted")
	}
}

func TestAcquireWriteWaitContention(t *testing.T) {
	// N actions serialize through the waiting write lock, each
	// incrementing the committed value: no update may be lost.
	a := NewAtomic(5, value.Int(0), ids.NoAction)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		aid := ids.ActionID{Coordinator: 1, Seq: uint64(100 + i)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.AcquireWriteWait(aid, 5*time.Second); err != nil {
				t.Error(err)
				return
			}
			cur := a.Value(aid).(value.Int)
			if err := a.Replace(aid, value.Int(int64(cur)+1)); err != nil {
				t.Error(err)
				return
			}
			a.Commit(aid)
		}()
	}
	wg.Wait()
	if got := a.Base().(value.Int); int64(got) != n {
		t.Fatalf("final = %d, want %d", got, n)
	}
}

func TestAcquireWriteWaitImmediateWhenFree(t *testing.T) {
	a := NewAtomic(5, value.Int(0), ids.NoAction)
	start := time.Now()
	if err := a.AcquireWriteWait(t1, time.Second); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("uncontended waiting acquire was slow")
	}
	// Reentrant.
	if err := a.AcquireWriteWait(t1, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDeadlockResolvedByTimeout(t *testing.T) {
	// Classic deadlock: t1 holds X wants Y; t2 holds Y wants X. The
	// timeouts break it; at least one acquire fails with ErrLockTimeout
	// and after the aborts both objects are free.
	x := NewAtomic(1, value.Int(0), ids.NoAction)
	y := NewAtomic(2, value.Int(0), ids.NoAction)
	if err := x.AcquireWrite(t1); err != nil {
		t.Fatal(err)
	}
	if err := y.AcquireWrite(t2); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- y.AcquireWriteWait(t1, 50*time.Millisecond) }()
	go func() { errs <- x.AcquireWriteWait(t2, 50*time.Millisecond) }()
	e1, e2 := <-errs, <-errs
	if e1 == nil && e2 == nil {
		t.Fatal("deadlock resolved without any timeout?")
	}
	for _, e := range []error{e1, e2} {
		if e != nil && !errors.Is(e, ErrLockTimeout) {
			t.Fatalf("unexpected error %v", e)
		}
	}
	// Abort both; everything is released.
	x.Abort(t1)
	y.Abort(t1)
	x.Abort(t2)
	y.Abort(t2)
	if !x.Writer().IsZero() || !y.Writer().IsZero() {
		t.Fatal("locks leaked after deadlock resolution")
	}
}
