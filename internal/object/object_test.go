package object

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/value"
)

var (
	t1 = ids.ActionID{Coordinator: 1, Seq: 1}
	t2 = ids.ActionID{Coordinator: 1, Seq: 2}
)

func TestAtomicCreateHoldsReadLock(t *testing.T) {
	a := NewAtomic(5, value.Int(0), t1)
	if !a.HoldsRead(t1) {
		t.Fatal("creator does not hold a read lock")
	}
	if err := a.AcquireWrite(t2); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("other action write-locked past creator's read lock: %v", err)
	}
}

func TestAtomicWriteLockCreatesVersion(t *testing.T) {
	a := NewAtomic(5, value.NewList(value.Int(1)), ids.NoAction)
	if err := a.AcquireWrite(t1); err != nil {
		t.Fatal(err)
	}
	cur, ok := a.Current()
	if !ok {
		t.Fatal("no current version after write lock")
	}
	// Mutate the current version; the base must be untouched.
	cur.(*value.List).Elems[0] = value.Int(99)
	if got := a.Base().(*value.List).Elems[0]; got != value.Int(1) {
		t.Fatalf("base version mutated through current: %v", got)
	}
	if got := a.Value(t1).(*value.List).Elems[0]; got != value.Int(99) {
		t.Fatalf("writer sees %v, want 99", got)
	}
	if got := a.Value(t2).(*value.List).Elems[0]; got != value.Int(1) {
		t.Fatalf("non-writer sees %v, want base 1", got)
	}
}

func TestAtomicCommitInstallsVersion(t *testing.T) {
	a := NewAtomic(5, value.Int(1), ids.NoAction)
	a.AcquireWrite(t1)
	a.Replace(t1, value.Int(2))
	a.Commit(t1)
	if got := a.Base(); got != value.Int(2) {
		t.Fatalf("base after commit = %v, want 2", got)
	}
	if _, ok := a.Current(); ok {
		t.Fatal("current version survives commit")
	}
	if !a.Writer().IsZero() {
		t.Fatal("write lock survives commit")
	}
}

func TestAtomicAbortDiscardsVersion(t *testing.T) {
	a := NewAtomic(5, value.Int(1), ids.NoAction)
	a.AcquireWrite(t1)
	a.Replace(t1, value.Int(2))
	a.Abort(t1)
	if got := a.Base(); got != value.Int(1) {
		t.Fatalf("base after abort = %v, want 1", got)
	}
	if _, ok := a.Current(); ok {
		t.Fatal("current version survives abort")
	}
}

func TestAtomicLockConflicts(t *testing.T) {
	a := NewAtomic(5, value.Int(0), ids.NoAction)
	if err := a.AcquireRead(t1); err != nil {
		t.Fatal(err)
	}
	if err := a.AcquireRead(t2); err != nil {
		t.Fatal(err) // two readers coexist
	}
	if err := a.AcquireWrite(t1); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("write granted over another reader: %v", err)
	}
	a.Abort(t2) // t2 releases
	if err := a.AcquireWrite(t1); err != nil {
		t.Fatalf("read-to-write upgrade failed: %v", err)
	}
	if err := a.AcquireRead(t2); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("read granted over writer: %v", err)
	}
	// Re-acquiring the write lock is idempotent.
	if err := a.AcquireWrite(t1); err != nil {
		t.Fatal(err)
	}
	// The writer may also read.
	if err := a.AcquireRead(t1); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicReplaceRequiresWriteLock(t *testing.T) {
	a := NewAtomic(5, value.Int(0), ids.NoAction)
	if err := a.Replace(t1, value.Int(1)); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("Replace without lock: %v", err)
	}
}

func TestRestoreAtomicWithWriter(t *testing.T) {
	a := RestoreAtomic(5, value.Int(1), value.Int(2), t1)
	if a.Writer() != t1 {
		t.Fatalf("writer = %v", a.Writer())
	}
	if got := a.Value(t1); got != value.Int(2) {
		t.Fatalf("writer's view = %v", got)
	}
	a.Commit(t1)
	if got := a.Base(); got != value.Int(2) {
		t.Fatalf("post-commit base = %v", got)
	}
}

func TestMutexSeize(t *testing.T) {
	m := NewMutex(7, value.Int(10))
	m.Seize(t1, func(v value.Value) value.Value {
		return value.Int(int64(v.(value.Int)) + 5)
	})
	if got := m.Current(); got != value.Int(15) {
		t.Fatalf("after seize, current = %v", got)
	}
	if m.Kind() != KindMutex || m.UID() != 7 {
		t.Fatal("mutex identity wrong")
	}
}

func TestHeapRegisterLookup(t *testing.T) {
	h := NewHeap()
	a := NewAtomic(2, value.Int(0), ids.NoAction)
	h.Register(a)
	got, ok := h.Lookup(2)
	if !ok || got != Recoverable(a) {
		t.Fatal("lookup failed")
	}
	if _, ok := h.Lookup(99); ok {
		t.Fatal("phantom object found")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	h.Register(NewAtomic(2, value.Int(1), ids.NoAction))
}

func TestHeapMaxUID(t *testing.T) {
	h := NewHeap()
	if h.MaxUID() != 0 {
		t.Fatal("empty heap MaxUID != 0")
	}
	h.Register(NewAtomic(3, value.Int(0), ids.NoAction))
	h.Register(NewAtomic(9, value.Int(0), ids.NoAction))
	h.Register(NewAtomic(6, value.Int(0), ids.NoAction))
	if h.MaxUID() != 9 {
		t.Fatalf("MaxUID = %v, want O9", h.MaxUID())
	}
}

// buildFigure3_6Heap reproduces the reachability structure of Fig 3-6:
// stable var X → O2 (atomic) → O3 (atomic); O4 exists but is unreachable.
func buildFigure3_6Heap() (*Heap, *Atomic, *Atomic, *Atomic) {
	h := NewHeap()
	o3 := NewAtomic(3, value.Int(3), ids.NoAction)
	o2 := NewAtomic(2, value.NewList(value.Ref{Target: o3}), ids.NoAction)
	o4 := NewAtomic(4, value.Int(4), ids.NoAction)
	root := NewAtomic(ids.StableVarsUID, value.RecordOf("X", value.Ref{Target: o2}), ids.NoAction)
	h.Register(root)
	h.Register(o2)
	h.Register(o3)
	h.Register(o4)
	return h, o2, o3, o4
}

func TestHeapTraverseReachability(t *testing.T) {
	h, _, _, _ := buildFigure3_6Heap()
	as := h.AccessibleSet()
	want := []ids.UID{ids.StableVarsUID, 2, 3}
	got := as.UIDs()
	if len(got) != len(want) {
		t.Fatalf("accessible = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("accessible = %v, want %v", got, want)
		}
	}
	if as.Contains(4) {
		t.Fatal("unreachable O4 reported accessible")
	}
}

func TestHeapTraverseFollowsCommittedStateOnly(t *testing.T) {
	// A write-locked atomic's *base* version defines reachability for
	// the traversal (uncommitted pointers don't count as stable state).
	h, o2, _, o4 := buildFigure3_6Heap()
	if err := o2.AcquireWrite(t1); err != nil {
		t.Fatal(err)
	}
	o2.Replace(t1, value.NewList(value.Ref{Target: o4}))
	as := h.AccessibleSet()
	if as.Contains(4) {
		t.Fatal("uncommitted reference made O4 accessible to Traverse")
	}
	if !as.Contains(3) {
		t.Fatal("committed reference to O3 lost")
	}
}

func TestHeapTraverseCyclesAndMutex(t *testing.T) {
	h := NewHeap()
	m := NewMutex(5, nil)
	a := NewAtomic(2, value.NewList(value.Ref{Target: m}), ids.NoAction)
	// Cycle: mutex points back to the atomic.
	m.SetCurrent(value.NewList(value.Ref{Target: a}))
	root := NewAtomic(ids.StableVarsUID, value.RecordOf("v", value.Ref{Target: a}), ids.NoAction)
	h.Register(root)
	h.Register(a)
	h.Register(m)
	count := 0
	h.Traverse(func(Recoverable) { count++ })
	if count != 3 {
		t.Fatalf("traversed %d objects, want 3", count)
	}
}

func TestAccessSetIntersect(t *testing.T) {
	oldAS := NewAccessSet()
	for _, u := range []ids.UID{1, 2, 3} {
		oldAS.Add(u)
	}
	newAS := NewAccessSet()
	for _, u := range []ids.UID{2, 3, 4} {
		newAS.Add(u)
	}
	// Trim: new set intersected with old keeps 2,3 and drops 4 (newly
	// accessible during traversal) and 1 (no longer reachable).
	newAS.Intersect(oldAS)
	if newAS.Contains(1) || newAS.Contains(4) || !newAS.Contains(2) || !newAS.Contains(3) {
		t.Fatalf("intersection = %v", newAS.UIDs())
	}
}

func TestPAT(t *testing.T) {
	p := NewPAT()
	p.Add(t1)
	if !p.Contains(t1) || p.Contains(t2) {
		t.Fatal("PAT membership wrong")
	}
	p.Remove(t1)
	if p.Contains(t1) || p.Len() != 0 {
		t.Fatal("PAT remove failed")
	}
}

func TestKindString(t *testing.T) {
	if KindAtomic.String() != "atomic" || KindMutex.String() != "mutex" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestHeapAccessors(t *testing.T) {
	h := NewHeap()
	if h.Len() != 0 || len(h.UIDs()) != 0 {
		t.Fatal("empty heap accessors wrong")
	}
	h.Register(NewAtomic(4, value.Int(0), ids.NoAction))
	h.Register(NewAtomic(2, value.Int(0), ids.NoAction))
	uids := h.UIDs()
	if h.Len() != 2 || len(uids) != 2 || uids[0] != 2 || uids[1] != 4 {
		t.Fatalf("UIDs = %v", uids)
	}
}

func TestAccessSetLenAndReplace(t *testing.T) {
	a := NewAccessSet()
	a.Add(1)
	a.Add(2)
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	b := NewAccessSet()
	b.Add(9)
	a.ReplaceWith(b)
	if a.Len() != 1 || !a.Contains(9) || a.Contains(1) {
		t.Fatalf("after ReplaceWith: %v", a.UIDs())
	}
}

func TestPATActions(t *testing.T) {
	p := NewPAT()
	p.Add(t1)
	p.Add(t2)
	acts := p.Actions()
	if len(acts) != 2 {
		t.Fatalf("Actions = %v", acts)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	a := NewAtomic(5, value.NewList(value.Int(1)), ids.NoAction)
	if got, err := value.Unflatten(a.SnapshotBase(nil)); err != nil || !value.Equal(got, value.NewList(value.Int(1))) {
		t.Fatalf("SnapshotBase: %v %v", got, err)
	}
	if _, ok := a.SnapshotCurrent(nil); ok {
		t.Fatal("SnapshotCurrent on unlocked object")
	}
	if err := a.AcquireWrite(t1); err != nil {
		t.Fatal(err)
	}
	a.Replace(t1, value.Int(7))
	if flat, ok := a.SnapshotCurrent(nil); !ok {
		t.Fatal("no current snapshot")
	} else if got, _ := value.Unflatten(flat); !value.Equal(got, value.Int(7)) {
		t.Fatalf("current snapshot = %s", value.String(got))
	}
	// SnapshotFor: writer sees current, others see base.
	if got, _ := value.Unflatten(a.SnapshotFor(t1, nil)); !value.Equal(got, value.Int(7)) {
		t.Fatalf("SnapshotFor(writer) = %s", value.String(got))
	}
	if got, _ := value.Unflatten(a.SnapshotFor(t2, nil)); !value.Equal(got, value.NewList(value.Int(1))) {
		t.Fatalf("SnapshotFor(other) = %s", value.String(got))
	}
	a.SetBase(value.Int(100))
	if !value.Equal(a.Base(), value.Int(100)) {
		t.Fatal("SetBase failed")
	}
	m := NewMutex(6, value.Str("x"))
	if got, _ := value.Unflatten(m.Snapshot(nil)); !value.Equal(got, value.Str("x")) {
		t.Fatalf("mutex snapshot = %s", value.String(got))
	}
	if m.Kind().String() != "mutex" || a.Kind().String() != "atomic" {
		t.Fatal("kind strings")
	}
}
