// Package object implements the recoverable objects of thesis §2.4:
// built-in atomic objects and mutex objects, together with the volatile
// heap they live in and the bookkeeping sets the recovery system keeps
// about them (the modified object set, the accessibility set, and the
// prepared actions table).
//
// Atomic objects provide atomicity through read/write locks and
// versions: acquiring a write lock creates a current version (a copy of
// the base version); commit installs it, abort discards it (§2.4.1).
// Mutex objects are containers with a seize lock and a single current
// version; once an action has *prepared*, a mutex object's new state
// survives even if the action later aborts (§2.4.2).
package object

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/value"
)

// Kind distinguishes the two flavors of recoverable object.
type Kind uint8

const (
	// KindAtomic marks a built-in atomic object.
	KindAtomic Kind = iota + 1
	// KindMutex marks a mutex object.
	KindMutex
)

func (k Kind) String() string {
	switch k {
	case KindAtomic:
		return "atomic"
	case KindMutex:
		return "mutex"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrLockConflict is returned when an action requests a lock held in a
// conflicting mode by another action.
var ErrLockConflict = errors.New("object: lock conflict")

// ErrNotLocked is returned when an operation requires a lock the action
// does not hold.
var ErrNotLocked = errors.New("object: lock not held")

// ErrLockTimeout is returned by the waiting acquire variants when the
// lock was not granted within the deadline. In Argus, waiting actions
// that might be deadlocked are timed out and aborted; the caller is
// expected to abort the action and retry.
var ErrLockTimeout = errors.New("object: lock wait timed out")

// Recoverable is a unit written to stable storage: an atomic object or
// a mutex object (§2.4).
type Recoverable interface {
	value.Obj
	// Kind reports whether the object is atomic or mutex.
	Kind() Kind
}

// Atomic is a built-in atomic object (§2.4.1).
type Atomic struct {
	uid ids.UID

	mu         sync.Mutex
	base       value.Value // latest committed version
	current    value.Value // version being built by the writer, if any
	hasCurrent bool
	readers    map[ids.ActionID]bool
	writer     ids.ActionID
	// waitCh is closed (and replaced) whenever a lock is released, waking
	// the waiting acquire variants.
	waitCh chan struct{}
}

// NewAtomic creates an atomic object on behalf of creator, who holds a
// read lock on it; the initial value is the single (base) version
// (§2.4.1: "for newly created atomic objects, the creating action holds
// a read lock on the object").
func NewAtomic(uid ids.UID, initial value.Value, creator ids.ActionID) *Atomic {
	a := &Atomic{uid: uid, base: initial, readers: map[ids.ActionID]bool{}}
	if !creator.IsZero() {
		a.readers[creator] = true
	}
	return a
}

// RestoreAtomic rebuilds an atomic object during recovery with an
// explicit base version and, if writer is non-zero, a current version
// write-locked by writer (recovery algorithm step 2.e.ii / 2.h.ii).
func RestoreAtomic(uid ids.UID, base, current value.Value, writer ids.ActionID) *Atomic {
	a := &Atomic{uid: uid, base: base, readers: map[ids.ActionID]bool{}}
	if !writer.IsZero() {
		a.writer = writer
		a.current = current
		a.hasCurrent = true
	}
	return a
}

// UID implements Recoverable.
func (a *Atomic) UID() ids.UID { return a.uid }

// Kind implements Recoverable.
func (a *Atomic) Kind() Kind { return KindAtomic }

// AcquireRead grants aid a read lock, failing on conflict with another
// action's write lock.
func (a *Atomic) AcquireRead(aid ids.ActionID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.writer.IsZero() && a.writer != aid {
		return fmt.Errorf("%w: %v read-blocked by writer %v on %v", ErrLockConflict, aid, a.writer, a.uid)
	}
	a.readers[aid] = true
	return nil
}

// AcquireWrite grants aid a write lock (upgrading its read lock if
// held), creating the current version as a copy of the base version.
// It fails if any other action holds a lock.
func (a *Atomic) AcquireWrite(aid ids.ActionID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.writer.IsZero() {
		if a.writer == aid {
			return nil
		}
		return fmt.Errorf("%w: %v write-blocked by writer %v on %v", ErrLockConflict, aid, a.writer, a.uid)
	}
	for r := range a.readers {
		if r != aid {
			return fmt.Errorf("%w: %v write-blocked by reader %v on %v", ErrLockConflict, aid, r, a.uid)
		}
	}
	a.writer = aid
	a.current = value.Copy(a.base)
	a.hasCurrent = true
	return nil
}

// Value returns the version visible to aid: the current version if aid
// is the writer, otherwise the base version. Reading requires a lock in
// the strict model, but Value itself does not check — the guardian
// runtime acquires locks before calling it.
func (a *Atomic) Value(aid ids.ActionID) value.Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.hasCurrent && a.writer == aid {
		return a.current
	}
	return a.base
}

// Replace sets the current version outright; aid must hold the write
// lock.
func (a *Atomic) Replace(aid ids.ActionID, v value.Value) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.writer != aid || aid.IsZero() {
		return fmt.Errorf("%w: %v does not write-lock %v", ErrNotLocked, aid, a.uid)
	}
	a.current = v
	return nil
}

// Commit installs aid's current version as the new base version and
// releases aid's locks (§2.4.1: "if the action ultimately commits, this
// version will be retained and the old version discarded").
func (a *Atomic) Commit(aid ids.ActionID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.writer == aid && a.hasCurrent {
		a.base = a.current
	}
	a.releaseLocked(aid)
}

// Abort discards aid's current version and releases its locks.
func (a *Atomic) Abort(aid ids.ActionID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.releaseLocked(aid)
}

func (a *Atomic) releaseLocked(aid ids.ActionID) {
	if a.writer == aid {
		a.writer = ids.ActionID{}
		a.current = nil
		a.hasCurrent = false
	}
	delete(a.readers, aid)
	// Wake any waiting acquirers.
	if a.waitCh != nil {
		close(a.waitCh)
		a.waitCh = nil
	}
}

// waitChan returns (creating if needed) the channel closed at the next
// lock release. Callers must hold a.mu.
func (a *Atomic) waitChanLocked() chan struct{} {
	if a.waitCh == nil {
		a.waitCh = make(chan struct{})
	}
	return a.waitCh
}

// AcquireReadWait is AcquireRead that blocks until the lock is granted
// or the timeout expires (ErrLockTimeout). Argus actions wait for
// locks; a timeout stands in for its deadlock handling — the caller
// should abort the action and retry.
func (a *Atomic) AcquireReadWait(aid ids.ActionID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		a.mu.Lock()
		if a.writer.IsZero() || a.writer == aid {
			a.readers[aid] = true
			a.mu.Unlock()
			return nil
		}
		ch := a.waitChanLocked()
		a.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("%w: %v reading %v", ErrLockTimeout, aid, a.uid)
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return fmt.Errorf("%w: %v reading %v", ErrLockTimeout, aid, a.uid)
		}
	}
}

// AcquireWriteWait is AcquireWrite that blocks until the lock is
// granted or the timeout expires (ErrLockTimeout).
func (a *Atomic) AcquireWriteWait(aid ids.ActionID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		a.mu.Lock()
		grantable := a.writer == aid
		if a.writer.IsZero() {
			grantable = true
			for r := range a.readers {
				if r != aid {
					grantable = false
					break
				}
			}
		}
		if grantable {
			if a.writer.IsZero() {
				a.writer = aid
				a.current = value.Copy(a.base)
				a.hasCurrent = true
			}
			a.mu.Unlock()
			return nil
		}
		ch := a.waitChanLocked()
		a.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("%w: %v writing %v", ErrLockTimeout, aid, a.uid)
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return fmt.Errorf("%w: %v writing %v", ErrLockTimeout, aid, a.uid)
		}
	}
}

// Writer returns the action holding the write lock (zero if none).
func (a *Atomic) Writer() ids.ActionID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.writer
}

// HoldsRead reports whether aid holds a read lock.
func (a *Atomic) HoldsRead(aid ids.ActionID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.readers[aid]
}

// Base returns the base (committed) version.
func (a *Atomic) Base() value.Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.base
}

// Current returns the in-progress version and whether one exists.
func (a *Atomic) Current() (value.Value, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current, a.hasCurrent
}

// Mutex is a mutex object (§2.4.2): a container with a seize lock and a
// single current version.
type Mutex struct {
	uid ids.UID

	mu      sync.Mutex // the seize lock
	holder  ids.ActionID
	current value.Value
}

// NewMutex creates a mutex object with the given current version.
func NewMutex(uid ids.UID, current value.Value) *Mutex {
	return &Mutex{uid: uid, current: current}
}

// UID implements Recoverable.
func (m *Mutex) UID() ids.UID { return m.uid }

// Kind implements Recoverable.
func (m *Mutex) Kind() Kind { return KindMutex }

// Seize runs fn while aid possesses the mutex (the Argus seize
// construct). fn receives the current version and returns its
// replacement. The recovery system uses the same lock to synchronize
// copying with user code (§2.4.3 step 1).
func (m *Mutex) Seize(aid ids.ActionID, fn func(v value.Value) value.Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.holder = aid
	m.current = fn(m.current)
	m.holder = ids.ActionID{}
}

// Current returns the current version, synchronizing with any action in
// possession.
func (m *Mutex) Current() value.Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// SetCurrent replaces the current version (used by recovery).
func (m *Mutex) SetCurrent(v value.Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.current = v
}

// Snapshot flattens the current version while in possession of the
// seize lock, synchronizing the copy with user code (§2.4.3 step 1).
// visit is called for each referenced recoverable object.
func (m *Mutex) Snapshot(visit func(value.Obj)) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return value.Flatten(m.current, visit)
}

// SnapshotFor flattens the version of an atomic object visible to aid
// (the current version if aid is the writer, the base version
// otherwise) under the object's lock. visit is called for each
// referenced recoverable object.
func (a *Atomic) SnapshotFor(aid ids.ActionID, visit func(value.Obj)) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := a.base
	if a.hasCurrent && a.writer == aid {
		v = a.current
	}
	return value.Flatten(v, visit)
}

// SnapshotBase flattens the base version under the object's lock.
func (a *Atomic) SnapshotBase(visit func(value.Obj)) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return value.Flatten(a.base, visit)
}

// SnapshotCurrent flattens the current version under the object's lock;
// ok is false if no current version exists.
func (a *Atomic) SnapshotCurrent(visit func(value.Obj)) ([]byte, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.hasCurrent {
		return nil, false
	}
	return value.Flatten(a.current, visit), true
}

// SetBase replaces the base version (used by recovery when a committed
// version for a restored object arrives).
func (a *Atomic) SetBase(v value.Value) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.base = v
}
