// Package chaos is a multi-process chaos testnet: it launches real
// rosd processes, drives them with a deterministic seeded workload
// (internal/chaos/workload), injects real faults mid-traffic —
// SIGKILL, SIGSTOP/SIGCONT, TCP partitions, connect/read delays,
// disk-full — heals, re-drives recovery through the rosctl paths, and
// verifies the survivors against two independent authorities: the
// external-history serial oracle (crashtest.CheckExternal) over what
// clients were told, and the obs.Checker invariants over the merged
// per-node trace files.
//
// The package deliberately lives outside the determinism analyzer's
// scope: a fault injector's whole job is wall-clock pacing and real
// process signals. Determinism lives one level down, in the workload
// generator, where it is enforced.
package chaos

import (
	"net"
	"sync"
	"time"
)

// Proxy is a TCP forwarder interposed between clients and one rosd
// listener, so the harness can cut or degrade a node's network without
// touching the process. A partition closes every established
// connection and refuses new ones — the client sees connection resets,
// exactly the below-the-reply failure the retry contract calls
// "unreachable". Delays model slow links: a connect delay before each
// upstream dial, a read delay before each chunk relayed from the node.
type Proxy struct {
	ln     net.Listener
	target string

	mu          sync.Mutex
	partitioned bool
	connectWait time.Duration
	readWait    time.Duration
	conns       map[net.Conn]struct{}
	closed      bool

	wg sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port forwarding to
// target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients (and peer nodes) should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target is the real node address behind the proxy.
func (p *Proxy) Target() string { return p.target }

// Partition cuts the link: established connections are reset and new
// ones refused until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	conns := make([]net.Conn, 0, len(p.conns))
	// Draining the active-connection set to reset them; order is irrelevant.
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		//roslint:besteffort the whole point is to break these connections
		_ = c.Close()
	}
}

// Heal restores the link.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.connectWait = 0
	p.readWait = 0
	p.mu.Unlock()
}

// SetDelay injects a pause before each upstream dial (connect) and
// before each relayed chunk from the node (read). Zero clears.
func (p *Proxy) SetDelay(connect, read time.Duration) {
	p.mu.Lock()
	p.connectWait = connect
	p.readWait = read
	p.mu.Unlock()
}

// Close stops the proxy permanently.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	//roslint:besteffort listener teardown; the accept loop exits on the error either way
	_ = p.ln.Close()
	p.Partition() // reset whatever is still established
	p.wg.Wait()
}

func (p *Proxy) state() (partitioned bool, connect, read time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned, p.connectWait, p.readWait
}

// track registers an active connection, or refuses it (false) when the
// link is partitioned or the proxy closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.partitioned || p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return // closed
		}
		p.wg.Add(1)
		go p.serve(down)
	}
}

// serve relays one client connection to the target node.
func (p *Proxy) serve(down net.Conn) {
	defer p.wg.Done()
	partitioned, connect, _ := p.state()
	if partitioned {
		//roslint:besteffort refusing a connection across a partition
		_ = down.Close()
		return
	}
	if connect > 0 {
		time.Sleep(connect)
	}
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		//roslint:besteffort the node is down or unreachable; the client sees the reset it would see without the proxy
		_ = down.Close()
		return
	}
	if !p.track(down) || !p.track(up) {
		//roslint:besteffort a partition landed while dialing
		_ = down.Close()
		//roslint:besteffort same
		_ = up.Close()
		p.untrack(down)
		return
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.relay(up, down, false) }()
	go func() { defer wg.Done(); p.relay(down, up, true) }()
	wg.Wait()
	p.untrack(down)
	p.untrack(up)
}

// relay copies src into dst chunk by chunk and resets both ends when
// either side drops. With delayed set (the node-to-client direction)
// each chunk waits the current read delay, re-read per chunk so
// SetDelay takes effect mid-connection.
func (p *Proxy) relay(dst, src net.Conn, delayed bool) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if delayed {
				if _, _, wait := p.state(); wait > 0 {
					time.Sleep(wait)
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	//roslint:besteffort tearing down a finished or broken relay pair
	_ = dst.Close()
	//roslint:besteffort same
	_ = src.Close()
}
