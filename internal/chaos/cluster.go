package chaos

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/client"
)

// Topology names a cluster shape the harness knows how to build.
type Topology string

const (
	// TopologyStandalone is one unreplicated rosd.
	TopologyStandalone Topology = "standalone"
	// TopologyReplicated is one primary shipping its log to two
	// backups with quorum 2 — the PR 6 arrangement.
	TopologyReplicated Topology = "replicated"
	// TopologySharded is three processes hosting four shards behind a
	// hash routing table — the PR 8 arrangement, cross-shard 2PC over
	// TCP.
	TopologySharded Topology = "sharded"
)

// Node is one rosd process plus the proxy fronting it. Everything the
// cluster's other members or clients dial is the proxy address; the
// real listener is reachable only to the proxy, so a Partition cuts
// the node off completely.
type Node struct {
	Name    string
	Addr    string // real rosd listener
	Proxy   *Proxy // what everyone else dials
	DataDir string
	// traceBase is the node's trace-file stem. Each process
	// incarnation writes a fresh file (the sink truncates on open, and
	// the merge wants one stream per process anyway); TraceFiles
	// accumulates them in start order.
	traceBase  string
	TraceFiles []string
	args       []string // rosd argv after the binary, minus -tracefile

	mu   sync.Mutex
	cmd  *exec.Cmd
	down bool // killed or stopped and not yet restarted
}

// Cluster is a set of rosd processes forming one topology, plus the
// scratch directory their data and traces live in.
type Cluster struct {
	Topology Topology
	Dir      string
	RosdBin  string
	CtlBin   string
	Nodes    []*Node

	// PrimaryIndex / BackupIndexes locate roles in Nodes (replicated
	// topology only).
	PrimaryIndex  int
	BackupIndexes []int

	// RouteMap is the -routemap value (sharded topology only), built
	// over proxy addresses so routed traffic is partitionable.
	RouteMap string
	// ShardAddrs maps shard id to the proxy address of its hosting
	// node (sharded topology only).
	ShardAddrs map[uint32]string

	// traceOrder lists every incarnation's trace file in global
	// process-start order — the stream order the trace merge needs for
	// its guardian-continuity rule.
	traceMu    sync.Mutex
	traceOrder []string
}

// BuildBinaries compiles rosd and rosctl into dir and returns their
// paths. moduleRoot is the repo root (where go.mod lives); tests pass
// "../.." and cmd/roschaos resolves it from the working directory.
func BuildBinaries(moduleRoot, dir string) (rosdBin, ctlBin string, err error) {
	rosdBin = filepath.Join(dir, "rosd")
	ctlBin = filepath.Join(dir, "rosctl")
	for _, b := range [][2]string{{rosdBin, "repro/cmd/rosd"}, {ctlBin, "repro/cmd/rosctl"}} {
		cmd := exec.Command("go", "build", "-o", b[0], b[1])
		cmd.Dir = moduleRoot
		if out, berr := cmd.CombinedOutput(); berr != nil {
			return "", "", fmt.Errorf("go build %s: %v\n%s", b[1], berr, out)
		}
	}
	return rosdBin, ctlBin, nil
}

// ModuleRoot walks up from the working directory to the enclosing
// go.mod.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("chaos: no go.mod above the working directory")
		}
		dir = parent
	}
}

// freeAddrs reserves n distinct loopback addresses. The usual bind
// race (listener closed before rosd rebinds) is retried away by the
// ping loop.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		if err := l.Close(); err != nil {
			return nil, err
		}
	}
	return addrs, nil
}

// ClusterConfig tunes cluster construction.
type ClusterConfig struct {
	Topology Topology
	// Dir is the scratch directory (data dirs, trace files). Required.
	Dir string
	// RosdBin / CtlBin are prebuilt binaries. Required.
	RosdBin string
	CtlBin  string
	// DataCap, when nonzero, starts every node with -datacap (bytes).
	DataCap int64
}

// NewCluster builds (but does not start) the nodes of a topology.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	c := &Cluster{Topology: cfg.Topology, Dir: cfg.Dir, RosdBin: cfg.RosdBin, CtlBin: cfg.CtlBin}
	var n int
	switch cfg.Topology {
	case TopologyStandalone:
		n = 1
	case TopologyReplicated, TopologySharded:
		n = 3
	default:
		return nil, fmt.Errorf("chaos: unknown topology %q", cfg.Topology)
	}
	addrs, err := freeAddrs(n)
	if err != nil {
		return nil, err
	}
	mk := func(i int, name string) (*Node, error) {
		p, err := NewProxy(addrs[i])
		if err != nil {
			return nil, err
		}
		nd := &Node{
			Name:      name,
			Addr:      addrs[i],
			Proxy:     p,
			DataDir:   filepath.Join(cfg.Dir, name, "data"),
			traceBase: filepath.Join(cfg.Dir, name+".trace"),
		}
		if err := os.MkdirAll(nd.DataDir, 0o755); err != nil {
			p.Close()
			return nil, err
		}
		return nd, nil
	}
	common := func(nd *Node) []string {
		args := []string{
			"-addr", nd.Addr,
			"-data", nd.DataDir,
		}
		if cfg.DataCap > 0 {
			args = append(args, "-datacap", fmt.Sprint(cfg.DataCap))
		}
		return args
	}

	switch cfg.Topology {
	case TopologyStandalone:
		nd, err := mk(0, "n0")
		if err != nil {
			return nil, err
		}
		nd.args = append(common(nd), "-id", "1")
		c.Nodes = []*Node{nd}

	case TopologyReplicated:
		names := []string{"primary", "backup2", "backup3"}
		nodes := make([]*Node, 3)
		for i, name := range names {
			nd, err := mk(i, name)
			if err != nil {
				c.Close()
				return nil, err
			}
			nodes[i] = nd
		}
		// The primary dials its backups through their proxies, so a
		// partition cuts replication traffic, not just client traffic.
		backupsArg := fmt.Sprintf("2=%s,3=%s", nodes[1].Proxy.Addr(), nodes[2].Proxy.Addr())
		nodes[0].args = append(common(nodes[0]),
			"-id", "1", "-role", "primary", "-backups", backupsArg, "-quorum", "2")
		nodes[1].args = append(common(nodes[1]),
			"-id", "2", "-role", "backup", "-primary-id", "1")
		nodes[2].args = append(common(nodes[2]),
			"-id", "3", "-role", "backup", "-primary-id", "1")
		c.Nodes = nodes
		c.PrimaryIndex = 0
		c.BackupIndexes = []int{1, 2}

	case TopologySharded:
		names := []string{"node0", "node1", "node2"}
		nodes := make([]*Node, 3)
		for i, name := range names {
			nd, err := mk(i, name)
			if err != nil {
				c.Close()
				return nil, err
			}
			nodes[i] = nd
		}
		// Shards 2 and 3 on node0, shard 4 on node1, shard 5 on node2
		// (the smoke-test layout). The route map points at proxies.
		c.RouteMap = fmt.Sprintf("2=%s,3=%s,4=%s,5=%s",
			nodes[0].Proxy.Addr(), nodes[0].Proxy.Addr(),
			nodes[1].Proxy.Addr(), nodes[2].Proxy.Addr())
		c.ShardAddrs = map[uint32]string{
			2: nodes[0].Proxy.Addr(), 3: nodes[0].Proxy.Addr(),
			4: nodes[1].Proxy.Addr(), 5: nodes[2].Proxy.Addr(),
		}
		shardsOf := []string{"2,3", "4", "5"}
		for i, nd := range nodes {
			nd.args = append(common(nd), "-shards", shardsOf[i], "-routemap", c.RouteMap)
		}
		c.Nodes = nodes
	}
	return c, nil
}

// Start launches every node and waits until each answers a ping
// through its proxy.
func (c *Cluster) Start() error {
	for _, nd := range c.Nodes {
		if err := c.StartNode(nd, nil); err != nil {
			return err
		}
	}
	for _, nd := range c.Nodes {
		if err := c.WaitUp(nd, 10*time.Second); err != nil {
			return err
		}
	}
	return nil
}

// StartNode launches (or relaunches) one node, appending extraArgs to
// its standing argv — a restart with a different -datacap is how the
// disk-full fault heals.
func (c *Cluster) StartNode(nd *Node, extraArgs []string) error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.cmd != nil && !nd.down {
		return fmt.Errorf("chaos: node %s already running", nd.Name)
	}
	trace := nd.traceBase
	if n := len(nd.TraceFiles); n > 0 {
		trace = fmt.Sprintf("%s.r%d", nd.traceBase, n)
	}
	argv := append(append([]string{}, nd.args...), "-tracefile", trace)
	argv = append(argv, extraArgs...)
	cmd := exec.Command(c.RosdBin, argv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	nd.TraceFiles = append(nd.TraceFiles, trace)
	c.traceMu.Lock()
	c.traceOrder = append(c.traceOrder, trace)
	c.traceMu.Unlock()
	nd.cmd = cmd
	nd.down = false
	return nil
}

// TraceOrder returns every incarnation's trace file in global
// process-start order.
func (c *Cluster) TraceOrder() []string {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	return append([]string(nil), c.traceOrder...)
}

// WaitUp pings the node through its proxy until it answers.
func (c *Cluster) WaitUp(nd *Node, timeout time.Duration) error {
	cl := client.New(nd.Proxy.Addr(), client.Options{
		DialTimeout: 500 * time.Millisecond, CallTimeout: time.Second, MaxAttempts: 1,
	})
	//roslint:besteffort ping-probe client teardown
	defer cl.Close()
	deadline := time.Now().Add(timeout)
	for {
		err := cl.Ping()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: node %s never came up: %v", nd.Name, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Kill SIGKILLs the node: the Lampson–Sturgis crash. The page cache
// survives, the process's volatile state does not.
func (nd *Node) Kill() error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.cmd == nil || nd.down {
		return nil
	}
	if err := nd.cmd.Process.Kill(); err != nil {
		return err
	}
	// Reap the deliberately killed process; its exit status is meaningless.
	_ = nd.cmd.Wait()
	nd.down = true
	return nil
}

// Pause SIGSTOPs the node — alive but unresponsive, the gray failure.
func (nd *Node) Pause() error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.cmd == nil || nd.down {
		return nil
	}
	return nd.cmd.Process.Signal(syscall.SIGSTOP)
}

// Resume SIGCONTs a paused node.
func (nd *Node) Resume() error {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.cmd == nil || nd.down {
		return nil
	}
	return nd.cmd.Process.Signal(syscall.SIGCONT)
}

// Running reports whether the process is believed alive.
func (nd *Node) Running() bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.cmd != nil && !nd.down
}

// Drain SIGTERMs the node and waits for its graceful exit, bounded by
// timeout — this is what flushes and fsyncs the node's trace file.
func (nd *Node) Drain(timeout time.Duration) error {
	nd.mu.Lock()
	cmd := nd.cmd
	down := nd.down
	nd.mu.Unlock()
	if cmd == nil || down {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		nd.mu.Lock()
		nd.down = true
		nd.mu.Unlock()
		return err
	case <-time.After(timeout):
		// Escalate after the missed drain deadline.
		_ = cmd.Process.Kill()
		<-done
		nd.mu.Lock()
		nd.down = true
		nd.mu.Unlock()
		return fmt.Errorf("chaos: node %s missed the drain deadline", nd.Name)
	}
}

// Close tears the whole cluster down: kill every process, close every
// proxy. Data and traces stay on disk for inspection.
func (c *Cluster) Close() {
	for _, nd := range c.Nodes {
		if nd == nil {
			continue
		}
		_ = nd.Resume() // a SIGSTOPped process ignores SIGKILL's reaping otherwise
		_ = nd.Kill()
		if nd.Proxy != nil {
			nd.Proxy.Close()
		}
	}
}

// Ctl runs one rosctl command against addr and returns its combined
// output — the operator path the harness re-drives recovery through.
func (c *Cluster) Ctl(addr string, args ...string) (string, error) {
	out, err := exec.Command(c.CtlBin,
		append([]string{"-addr", addr, "-timeout", "5s"}, args...)...).CombinedOutput()
	return string(out), err
}

// Seeds returns the proxy addresses clients should dial.
func (c *Cluster) Seeds() []string {
	seeds := make([]string, len(c.Nodes))
	for i, nd := range c.Nodes {
		seeds[i] = nd.Proxy.Addr()
	}
	return seeds
}

// Promote picks the backup with the longest durable received log,
// promotes it through `rosctl promote minAcked` (the safety-checked
// operator path), and returns that node. lastQuorum is the deposed
// primary's last known quorum-acked byte count; pass 0 to promote the
// best backup unconditionally.
func (c *Cluster) Promote(lastQuorum uint64) (*Node, error) {
	if c.Topology != TopologyReplicated {
		return nil, fmt.Errorf("chaos: promote on %s topology", c.Topology)
	}
	var best *Node
	var bestDurable uint64
	for _, i := range c.BackupIndexes {
		nd := c.Nodes[i]
		if !nd.Running() {
			continue
		}
		cl := client.New(nd.Proxy.Addr(), client.Options{CallTimeout: 2 * time.Second})
		st, err := cl.Status()
		//roslint:besteffort status-poll client teardown
		_ = cl.Close()
		if err != nil {
			continue
		}
		if best == nil || st.Rep.Durable > bestDurable {
			best, bestDurable = nd, st.Rep.Durable
		}
	}
	if best == nil {
		return nil, fmt.Errorf("chaos: no live backup to promote")
	}
	if bestDurable < lastQuorum {
		return nil, fmt.Errorf("chaos: best backup has %d durable bytes, quorum acked %d — an acked commit would be lost", bestDurable, lastQuorum)
	}
	out, err := c.Ctl(best.Proxy.Addr(), "promote", fmt.Sprint(lastQuorum))
	if err != nil {
		return nil, fmt.Errorf("rosctl promote: %v\n%s", err, out)
	}
	if !strings.Contains(out, "role") {
		return nil, fmt.Errorf("rosctl promote: unexpected output:\n%s", out)
	}
	return best, nil
}
