// Package workload is the chaos testnet's deterministic load
// generator: the "millions of users" proxy of ROADMAP item 3. A Gen
// turns a (Config, seed) pair into an unbounded stream of key/value
// operations — point reads, blind writes, counter increments, and
// cross-key transfer transactions — with a configurable operation mix,
// value sizes, and key popularity (uniform or zipfian).
//
// Determinism contract: the op stream is a pure function of the
// (Config, seed) pair. Identical pairs produce byte-identical streams
// (see Op.Append and TestStreamDeterminism); nothing in this package
// reads the wall clock, the global rand source, or map iteration
// order — it is in the determinism analyzer's scope. Pacing knobs
// (QPS, InFlight) ride in the Config so an episode is fully described
// by one value, but they do not influence the generated stream.
//
// The keyspace is split by role, derived from the key index: counter
// keys take incr and txn traffic (commutative deltas the serial oracle
// can check exactly), blob keys take put traffic (write-once values
// checked by membership). Transactions draw distinct counter keys and
// zero-sum deltas, so the cross-shard conservation invariant — the sum
// over all counters equals the sum of acked plain-incr deltas — holds
// under any subset of in-doubt transactions.
package workload

import (
	"fmt"
	"math/rand"
)

// Kind classifies one generated operation.
type Kind uint8

const (
	// KindGet reads one key.
	KindGet Kind = iota + 1
	// KindPut blind-writes a generated value to a blob key.
	KindPut
	// KindIncr adds a delta to a counter key.
	KindIncr
	// KindTxn atomically transfers between Span counter keys (deltas
	// sum to zero), the cross-shard two-phase-commit workload.
	KindTxn
)

var kindNames = [...]string{
	KindGet:  "get",
	KindPut:  "put",
	KindIncr: "incr",
	KindTxn:  "txn",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Dist selects the key-popularity distribution.
type Dist uint8

const (
	// DistUniform draws keys uniformly from the keyspace.
	DistUniform Dist = iota + 1
	// DistZipf draws keys zipfian: key 0 hottest, tail cold. The skew
	// exponent is Config.ZipfSkew1000.
	DistZipf
)

var distNames = [...]string{
	DistUniform: "uniform",
	DistZipf:    "zipf",
}

func (d Dist) String() string {
	if int(d) < len(distNames) && distNames[d] != "" {
		return distNames[d]
	}
	return fmt.Sprintf("dist(%d)", uint8(d))
}

// Config parameterizes a workload. The zero value is invalid; start
// from Default and adjust. It is wire-encodable (EncodeConfig /
// DecodeConfig) so an episode manifest can carry the exact workload it
// ran and a report can be replayed from its bytes alone.
type Config struct {
	// Keys is the keyspace size; key indices are [0, Keys).
	Keys uint32
	// BlobFrac1024 is the per-1024 share of the keyspace given to blob
	// (put-target) keys; the rest are counters. 0 disables puts'
	// targets (puts are then skipped even with PutPct > 0).
	BlobFrac1024 uint32
	// Dist is the key-popularity distribution.
	Dist Dist
	// ZipfSkew1000 is the zipf exponent s in thousandths (e.g. 1100 =
	// s 1.1). Must be > 1000 when Dist is DistZipf (rand.Zipf requires
	// s > 1).
	ZipfSkew1000 uint32
	// GetPct, PutPct, IncrPct, TxnPct weight the op mix; they must sum
	// to 100.
	GetPct, PutPct, IncrPct, TxnPct uint8
	// TxnSpan is how many distinct counter keys a transaction touches
	// (≥ 2).
	TxnSpan uint8
	// ValueMin and ValueMax bound generated put-value sizes in bytes
	// (inclusive; ValueMax ≥ ValueMin ≥ 1).
	ValueMin, ValueMax uint32
	// MaxDelta bounds plain-incr magnitudes: deltas are drawn from
	// [-MaxDelta, +MaxDelta] excluding 0. Must be ≥ 1.
	MaxDelta uint32
	// QPS is the driver's target issue rate in ops/second; 0 means
	// unpaced. Pacing only — it does not affect the op stream.
	QPS uint32
	// InFlight bounds the driver's concurrently outstanding ops.
	// Pacing only. Must be ≥ 1 for the driver.
	InFlight uint32
}

// Default is a balanced starting configuration: a read-heavy mix over
// a small zipfian keyspace with occasional cross-key transfers.
func Default() Config {
	return Config{
		Keys:         64,
		BlobFrac1024: 256, // one key in four takes puts
		Dist:         DistZipf,
		ZipfSkew1000: 1100,
		GetPct:       40,
		PutPct:       10,
		IncrPct:      40,
		TxnPct:       10,
		TxnSpan:      2,
		ValueMin:     8,
		ValueMax:     64,
		MaxDelta:     10,
		QPS:          200,
		InFlight:     8,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Keys == 0 {
		return fmt.Errorf("workload: Keys must be positive")
	}
	if c.BlobFrac1024 > 1024 {
		return fmt.Errorf("workload: BlobFrac1024 %d > 1024", c.BlobFrac1024)
	}
	if c.Dist != DistUniform && c.Dist != DistZipf {
		return fmt.Errorf("workload: unknown distribution %d", c.Dist)
	}
	if c.Dist == DistZipf && c.ZipfSkew1000 <= 1000 {
		return fmt.Errorf("workload: zipf skew %d must exceed 1000 (s > 1)", c.ZipfSkew1000)
	}
	if int(c.GetPct)+int(c.PutPct)+int(c.IncrPct)+int(c.TxnPct) != 100 {
		return fmt.Errorf("workload: op mix %d+%d+%d+%d must sum to 100",
			c.GetPct, c.PutPct, c.IncrPct, c.TxnPct)
	}
	if c.TxnPct > 0 && c.TxnSpan < 2 {
		return fmt.Errorf("workload: TxnSpan %d must be ≥ 2", c.TxnSpan)
	}
	if counterKeys := c.Keys - c.blobKeys(); c.TxnPct > 0 && uint32(c.TxnSpan) > counterKeys {
		return fmt.Errorf("workload: TxnSpan %d exceeds the %d counter keys", c.TxnSpan, counterKeys)
	}
	if c.PutPct > 0 && c.blobKeys() == 0 {
		return fmt.Errorf("workload: PutPct %d with no blob keys (BlobFrac1024 0)", c.PutPct)
	}
	if c.PutPct > 0 && (c.ValueMin == 0 || c.ValueMax < c.ValueMin) {
		return fmt.Errorf("workload: value size bounds [%d, %d] invalid", c.ValueMin, c.ValueMax)
	}
	if (c.IncrPct > 0 || c.TxnPct > 0) && c.MaxDelta == 0 {
		return fmt.Errorf("workload: MaxDelta must be ≥ 1")
	}
	return nil
}

// blobKeys is how many keys at the top of the index range are blob
// (put-target) keys.
func (c Config) blobKeys() uint32 {
	return c.Keys * c.BlobFrac1024 / 1024
}

// IsBlobKey reports whether key index i takes put traffic. The blob
// keys are the top BlobFrac1024/1024 of the index range, so counter
// indices stay dense at the bottom where the zipfian head lives.
func (c Config) IsBlobKey(i uint32) bool {
	return i >= c.Keys-c.blobKeys()
}

// KeyName renders key index i as the on-cluster key string.
func KeyName(i uint32) string { return fmt.Sprintf("k%06d", i) }

// Op is one generated operation. Keys holds one entry for Get/Put/
// Incr and TxnSpan distinct entries for Txn; Deltas matches Keys for
// Incr/Txn (zero-sum for Txn) and is nil otherwise; Value is the put
// payload and nil otherwise.
type Op struct {
	// Seq is the op's position in the stream, starting at 1.
	Seq uint64
	// Kind classifies the op.
	Kind Kind
	// Keys are the key indices the op touches.
	Keys []uint32
	// Deltas are the per-key increments (Incr/Txn).
	Deltas []int64
	// Value is the put payload (Put).
	Value []byte
}

// Append renders the op in a canonical byte form — the determinism
// test's currency: two streams are identical iff their Append bytes
// are.
func (o Op) Append(dst []byte) []byte {
	dst = append(dst, fmt.Sprintf("%d %s", o.Seq, o.Kind)...)
	for i, k := range o.Keys {
		dst = append(dst, ' ')
		dst = append(dst, KeyName(k)...)
		if o.Deltas != nil {
			dst = append(dst, fmt.Sprintf("%+d", o.Deltas[i])...)
		}
	}
	if o.Value != nil {
		dst = append(dst, fmt.Sprintf(" %dB %x", len(o.Value), o.Value)...)
	}
	dst = append(dst, '\n')
	return dst
}

// Gen generates the op stream for one (Config, seed) pair. Not safe
// for concurrent use; the driver owns one Gen per episode.
type Gen struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  uint64
}

// New returns a generator. The Config must Validate.
func New(cfg Config, seed int64) (*Gen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Gen{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if cfg.Dist == DistZipf {
		s := float64(cfg.ZipfSkew1000) / 1000
		g.zipf = rand.NewZipf(g.rng, s, 1, uint64(cfg.Keys)-1)
	}
	return g, nil
}

// Config returns the generator's configuration.
func (g *Gen) Config() Config { return g.cfg }

// key draws one key index from the configured distribution.
func (g *Gen) key() uint32 {
	if g.zipf != nil {
		return uint32(g.zipf.Uint64())
	}
	return uint32(g.rng.Intn(int(g.cfg.Keys)))
}

// counterKey draws a key until it lands on a counter (non-blob) key.
// Counter keys occupy the dense bottom of the index range, so under
// zipf this stays the hot head and terminates fast; under uniform the
// miss rate is BlobFrac1024/1024 < 1.
func (g *Gen) counterKey() uint32 {
	for {
		if k := g.key(); !g.cfg.IsBlobKey(k) {
			return k
		}
	}
}

// blobKey draws a blob key uniformly: the zipfian head is deliberately
// kept on the counters, where the oracle's exact arithmetic lives.
func (g *Gen) blobKey() uint32 {
	n := g.cfg.blobKeys()
	return g.cfg.Keys - n + uint32(g.rng.Intn(int(n)))
}

// delta draws a nonzero increment in [-MaxDelta, +MaxDelta].
func (g *Gen) delta() int64 {
	d := int64(g.rng.Intn(int(g.cfg.MaxDelta))) + 1
	if g.rng.Intn(2) == 0 {
		return -d
	}
	return d
}

// Next returns the next operation in the stream.
func (g *Gen) Next() Op {
	g.seq++
	op := Op{Seq: g.seq}
	roll := g.rng.Intn(100)
	switch {
	case roll < int(g.cfg.GetPct):
		op.Kind = KindGet
		op.Keys = []uint32{g.key()}
	case roll < int(g.cfg.GetPct)+int(g.cfg.PutPct):
		op.Kind = KindPut
		op.Keys = []uint32{g.blobKey()}
		n := int(g.cfg.ValueMin)
		if g.cfg.ValueMax > g.cfg.ValueMin {
			n += g.rng.Intn(int(g.cfg.ValueMax-g.cfg.ValueMin) + 1)
		}
		v := make([]byte, n)
		for i := range v {
			v[i] = 'a' + byte(g.rng.Intn(26))
		}
		op.Value = v
	case roll < int(g.cfg.GetPct)+int(g.cfg.PutPct)+int(g.cfg.IncrPct):
		op.Kind = KindIncr
		op.Keys = []uint32{g.counterKey()}
		op.Deltas = []int64{g.delta()}
	default:
		op.Kind = KindTxn
		span := int(g.cfg.TxnSpan)
		seen := make(map[uint32]bool, span)
		op.Keys = make([]uint32, 0, span)
		for len(op.Keys) < span {
			k := g.counterKey()
			if !seen[k] {
				seen[k] = true
				op.Keys = append(op.Keys, k)
			}
		}
		// Zero-sum transfer: the first span-1 legs draw freely, the
		// last balances, so total conservation is structural.
		op.Deltas = make([]int64, span)
		var sum int64
		for i := 0; i < span-1; i++ {
			op.Deltas[i] = g.delta()
			sum += op.Deltas[i]
		}
		op.Deltas[span-1] = -sum
	}
	return op
}
