// Config wire codec. An episode manifest carries the exact workload
// bytes it ran under, so a failing chaos run can be replayed from its
// report alone. Same discipline as internal/wire: minimal uvarints
// only, trailing bytes rejected, and the wirecodec analyzer holds the
// pair total (every Config field must round-trip).
package workload

import (
	"encoding/binary"
	"fmt"
)

// configVersion fences the encoding; bump on layout change.
const configVersion = 1

// EncodeConfig renders c in its canonical byte form.
func EncodeConfig(c Config) []byte {
	b := make([]byte, 0, 64)
	b = binary.AppendUvarint(b, configVersion)
	b = binary.AppendUvarint(b, uint64(c.Keys))
	b = binary.AppendUvarint(b, uint64(c.BlobFrac1024))
	b = append(b, byte(c.Dist))
	b = binary.AppendUvarint(b, uint64(c.ZipfSkew1000))
	b = append(b, c.GetPct, c.PutPct, c.IncrPct, c.TxnPct, c.TxnSpan)
	b = binary.AppendUvarint(b, uint64(c.ValueMin))
	b = binary.AppendUvarint(b, uint64(c.ValueMax))
	b = binary.AppendUvarint(b, uint64(c.MaxDelta))
	b = binary.AppendUvarint(b, uint64(c.QPS))
	b = binary.AppendUvarint(b, uint64(c.InFlight))
	return b
}

// DecodeConfig parses EncodeConfig's output. It rejects non-minimal
// varints, out-of-range values, and trailing bytes; the result is
// additionally Validate-checked, so a decoded Config is runnable.
func DecodeConfig(b []byte) (Config, error) {
	var c Config
	ver, b, err := takeUvarint(b)
	if err != nil {
		return Config{}, fmt.Errorf("workload config: version: %w", err)
	}
	if ver != configVersion {
		return Config{}, fmt.Errorf("workload config: unknown version %d", ver)
	}
	u32 := func(name string) uint32 {
		if err != nil {
			return 0
		}
		var v uint64
		v, b, err = takeUvarint(b)
		if err == nil && v > 1<<32-1 {
			err = fmt.Errorf("%s %d overflows uint32", name, v)
		}
		return uint32(v)
	}
	u8 := func(name string) uint8 {
		if err != nil {
			return 0
		}
		if len(b) == 0 {
			err = fmt.Errorf("%s: short buffer", name)
			return 0
		}
		v := b[0]
		b = b[1:]
		return v
	}
	c.Keys = u32("Keys")
	c.BlobFrac1024 = u32("BlobFrac1024")
	c.Dist = Dist(u8("Dist"))
	c.ZipfSkew1000 = u32("ZipfSkew1000")
	c.GetPct = u8("GetPct")
	c.PutPct = u8("PutPct")
	c.IncrPct = u8("IncrPct")
	c.TxnPct = u8("TxnPct")
	c.TxnSpan = u8("TxnSpan")
	c.ValueMin = u32("ValueMin")
	c.ValueMax = u32("ValueMax")
	c.MaxDelta = u32("MaxDelta")
	c.QPS = u32("QPS")
	c.InFlight = u32("InFlight")
	if err != nil {
		return Config{}, fmt.Errorf("workload config: %w", err)
	}
	if len(b) != 0 {
		return Config{}, fmt.Errorf("workload config: %d trailing bytes", len(b))
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// takeUvarint consumes one minimally-encoded uvarint.
func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated or overlong uvarint")
	}
	// Reject non-minimal encodings: re-encoding must reproduce the
	// consumed width, else two byte strings decode to one value.
	if n > 1 && b[n-1] == 0 {
		return 0, nil, fmt.Errorf("non-minimal uvarint")
	}
	return v, b[n:], nil
}
