package workload

import (
	"bytes"
	"math"
	"testing"
)

// TestStreamDeterminism: identical (seed, config) pairs produce
// byte-identical op streams; a different seed diverges.
func TestStreamDeterminism(t *testing.T) {
	cfg := Default()
	render := func(seed int64, n int) []byte {
		g, err := New(cfg, seed)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var b []byte
		for i := 0; i < n; i++ {
			b = g.Next().Append(b)
		}
		return b
	}
	const n = 2000
	a, b := render(42, n), render(42, n)
	if !bytes.Equal(a, b) {
		t.Fatalf("same (seed, config) produced different streams")
	}
	if bytes.Equal(a, render(43, n)) {
		t.Fatalf("different seeds produced identical streams")
	}
}

// TestZipfSkew: the zipfian sampler's empirical head frequencies fit
// the configured exponent. rand.Zipf draws P(k) ∝ (1+k)^(-s), so the
// least-squares slope of log(freq) against log(1+k) over the head
// ranks must come out near -s, across seeds.
func TestZipfSkew(t *testing.T) {
	for _, skew := range []uint32{1200, 1500} {
		s := float64(skew) / 1000
		for _, seed := range []int64{1, 2, 3} {
			cfg := Default()
			cfg.Dist = DistZipf
			cfg.ZipfSkew1000 = skew
			cfg.Keys = 1024
			cfg.BlobFrac1024 = 0
			cfg.PutPct = 0
			cfg.GetPct = 50
			g, err := New(cfg, seed)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			const samples = 200000
			counts := make([]float64, cfg.Keys)
			for i := 0; i < samples; i++ {
				counts[g.key()]++
			}
			// Fit over the 8 hottest ranks — the tail is too sparse to
			// estimate pointwise at this sample count.
			const head = 8
			var sx, sy, sxx, sxy float64
			for k := 0; k < head; k++ {
				if counts[k] == 0 {
					t.Fatalf("skew %.2f seed %d: head rank %d never drawn", s, seed, k)
				}
				x := math.Log(float64(1 + k))
				y := math.Log(counts[k] / samples)
				sx += x
				sy += y
				sxx += x * x
				sxy += x * y
			}
			slope := (float64(head)*sxy - sx*sy) / (float64(head)*sxx - sx*sx)
			if got := -slope; math.Abs(got-s) > 0.1 {
				t.Errorf("skew %.2f seed %d: fitted exponent %.3f, want within 0.1", s, seed, got)
			}
		}
	}
}

// TestUniformDist: uniform sampling is flat within tolerance.
func TestUniformDist(t *testing.T) {
	cfg := Default()
	cfg.Dist = DistUniform
	cfg.ZipfSkew1000 = 0
	cfg.Keys = 64
	g, err := New(cfg, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const samples = 64 * 2000
	counts := make([]int, cfg.Keys)
	for i := 0; i < samples; i++ {
		counts[g.key()]++
	}
	for k, c := range counts {
		if c < 1500 || c > 2500 {
			t.Errorf("uniform key %d drawn %d times, want ≈2000", k, c)
		}
	}
}

// TestOpShape: generated ops respect their structural contracts —
// puts hit blob keys, incrs hit counters, txn keys are distinct
// counters with zero-sum deltas, and the mix tracks the percentages.
func TestOpShape(t *testing.T) {
	cfg := Default()
	g, err := New(cfg, 99)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 20000
	kinds := map[Kind]int{}
	for i := 0; i < n; i++ {
		op := g.Next()
		kinds[op.Kind]++
		if op.Seq != uint64(i+1) {
			t.Fatalf("op %d: Seq %d", i, op.Seq)
		}
		switch op.Kind {
		case KindGet:
			if len(op.Keys) != 1 || op.Deltas != nil || op.Value != nil {
				t.Fatalf("get shape: %+v", op)
			}
		case KindPut:
			if len(op.Keys) != 1 || !cfg.IsBlobKey(op.Keys[0]) {
				t.Fatalf("put to non-blob key: %+v", op)
			}
			if len(op.Value) < int(cfg.ValueMin) || len(op.Value) > int(cfg.ValueMax) {
				t.Fatalf("put value size %d outside [%d, %d]", len(op.Value), cfg.ValueMin, cfg.ValueMax)
			}
		case KindIncr:
			if len(op.Keys) != 1 || cfg.IsBlobKey(op.Keys[0]) {
				t.Fatalf("incr to blob key: %+v", op)
			}
			if d := op.Deltas[0]; d == 0 || d < -int64(cfg.MaxDelta) || d > int64(cfg.MaxDelta) {
				t.Fatalf("incr delta %d outside ±%d", d, cfg.MaxDelta)
			}
		case KindTxn:
			if len(op.Keys) != int(cfg.TxnSpan) || len(op.Deltas) != int(cfg.TxnSpan) {
				t.Fatalf("txn span: %+v", op)
			}
			seen := map[uint32]bool{}
			var sum int64
			for i, k := range op.Keys {
				if cfg.IsBlobKey(k) {
					t.Fatalf("txn leg on blob key: %+v", op)
				}
				if seen[k] {
					t.Fatalf("txn repeats key %d: %+v", k, op)
				}
				seen[k] = true
				sum += op.Deltas[i]
			}
			if sum != 0 {
				t.Fatalf("txn deltas sum to %d: %+v", sum, op)
			}
		default:
			t.Fatalf("unknown kind %v", op.Kind)
		}
	}
	for kind, pct := range map[Kind]uint8{KindGet: cfg.GetPct, KindPut: cfg.PutPct, KindIncr: cfg.IncrPct, KindTxn: cfg.TxnPct} {
		got := float64(kinds[kind]) / n * 100
		if math.Abs(got-float64(pct)) > 2 {
			t.Errorf("%v: %.1f%% of stream, configured %d%%", kind, got, pct)
		}
	}
}

// TestValidate rejects the known-bad shapes.
func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Keys = 0 },
		func(c *Config) { c.BlobFrac1024 = 2000 },
		func(c *Config) { c.Dist = 99 },
		func(c *Config) { c.ZipfSkew1000 = 1000 },
		func(c *Config) { c.GetPct = 50 }, // mix no longer sums to 100
		func(c *Config) { c.TxnSpan = 1 },
		func(c *Config) { c.TxnSpan = 255 }, // exceeds counter keys
		func(c *Config) { c.BlobFrac1024 = 0 },
		func(c *Config) { c.ValueMin, c.ValueMax = 10, 5 },
		func(c *Config) { c.MaxDelta = 0 },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("Default invalid: %v", err)
	}
}

// TestConfigCodec: round-trip identity, plus rejection of trailing
// bytes, truncation, and version skew.
func TestConfigCodec(t *testing.T) {
	c := Default()
	c.Keys = 1 << 20
	c.QPS = 12345
	b := EncodeConfig(c)
	got, err := DecodeConfig(b)
	if err != nil {
		t.Fatalf("DecodeConfig: %v", err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
	if _, err := DecodeConfig(append(b, 0)); err == nil {
		t.Errorf("trailing byte accepted")
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeConfig(b[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	b2 := append([]byte(nil), b...)
	b2[0] = 0x7f
	if _, err := DecodeConfig(b2); err == nil {
		t.Errorf("version skew accepted")
	}
}
