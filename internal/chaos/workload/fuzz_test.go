package workload

import (
	"bytes"
	"testing"
)

// FuzzDecodeConfig holds the config codec's invariants under arbitrary
// bytes: DecodeConfig never panics, anything it accepts Validates and
// re-encodes to the exact input (canonical form), and the Default
// seeds keep KindGet/KindPut/KindIncr/KindTxn and
// DistUniform/DistZipf reachable in the accepted corpus.
func FuzzDecodeConfig(f *testing.F) {
	f.Add(EncodeConfig(Default()))
	uni := Default()
	uni.Dist = DistUniform
	uni.ZipfSkew1000 = 0
	f.Add(EncodeConfig(uni))
	small := Default()
	small.Keys = 8
	small.BlobFrac1024 = 512
	small.TxnSpan = 3
	f.Add(EncodeConfig(small))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeConfig(b)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("decoded config fails Validate: %v", verr)
		}
		if !bytes.Equal(EncodeConfig(c), b) {
			t.Fatalf("accepted non-canonical encoding: %x", b)
		}
	})
}
