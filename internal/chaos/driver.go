package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos/workload"
	"repro/internal/client"
	"repro/internal/crashtest"
	"repro/internal/twopc"
	"repro/internal/value"
	"repro/internal/wire"
)

// The driver is the harness's client fleet: it turns the deterministic
// op stream from workload.Gen into real wire traffic and records every
// attempt's externally visible outcome for the serial oracle.
//
// The recording contract mirrors the client retry contract:
//
//   - a reply is an ack (ExtAcked): the effect must survive;
//   - ErrBusy (every attempt drew StatusRetry) and a remote handler
//     error mean the server refused or aborted before completing the
//     action — definitely not executed (ExtNotExecuted);
//   - anything below the reply (dial refused, reset, deadline) means
//     the op MAY have executed (ExtInDoubt) — mutating ops use
//     MaxAttempts 1 precisely so one attempt is one 0/1 oracle
//     variable, never a hidden double-execution.
//
// Per-key mutexes (taken in sorted order) serialize the driver's own
// traffic key by key, which is what makes the oracle's per-key serial
// construction sound; the bounded in-flight window and QPS pacing ride
// on top.

// PendingTxn is a cross-shard transaction whose two-phase commit was
// interrupted by a fault; the heal phase re-drives it.
type PendingTxn struct {
	Txn  *client.Txn
	Keys []string
	// Verdict is the commit decision when the driver already knows it
	// (OutcomeAborted for a transaction that never reached Commit);
	// OutcomeUnknown means the heal phase must query the coordinator
	// shard.
	Verdict twopc.Outcome
}

// DriverConfig configures one episode's traffic.
type DriverConfig struct {
	Workload workload.Config
	Seed     int64
	// Ops is the total number of attempts to issue.
	Ops int
	// Seeds are the proxy addresses clients dial. Standalone and
	// replicated topologies use Seeds[0]; sharded uses all of them.
	Seeds []string
	// Sharded selects the routed client and enables cross-shard txns.
	Sharded bool
	// OnIssued, when set, is called synchronously from the dispatch
	// loop before the n-th op (1-based) is issued — the fault
	// scheduler's hook.
	OnIssued func(n int)
}

// Driver drives one workload against one cluster.
type Driver struct {
	cfg  DriverConfig
	gen  *workload.Gen
	hist *crashtest.ExtHistory

	keyLocks []sync.Mutex

	mutCl *client.Client
	getCl *client.Client
	mutR  *client.Routed
	getR  *client.Routed

	mu      sync.Mutex
	pending []*PendingTxn
	touched map[string]bool // key -> is blob
	acked   int
	inDoubt int
	notExec int
}

// NewDriver builds a driver. Call Run once, then read History,
// Pending, and Touched.
func NewDriver(cfg DriverConfig) (*Driver, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("chaos: driver needs at least one seed address")
	}
	gen, err := workload.New(cfg.Workload, cfg.Seed)
	if err != nil {
		return nil, err
	}
	d := &Driver{
		cfg:      cfg,
		gen:      gen,
		hist:     &crashtest.ExtHistory{},
		keyLocks: make([]sync.Mutex, cfg.Workload.Keys),
		touched:  make(map[string]bool),
	}
	mutOpt := client.Options{
		MaxAttempts: 1, DialTimeout: 500 * time.Millisecond, CallTimeout: 2 * time.Second,
	}
	getOpt := client.Options{
		MaxAttempts: 2, DialTimeout: 500 * time.Millisecond, CallTimeout: time.Second,
		BaseBackoff: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
	}
	if cfg.Sharded {
		d.mutR = client.NewRouted(cfg.Seeds, mutOpt)
		d.getR = client.NewRouted(cfg.Seeds, getOpt)
	} else {
		d.mutCl = client.New(cfg.Seeds[0], mutOpt)
		d.getCl = client.New(cfg.Seeds[0], getOpt)
	}
	return d, nil
}

// Close releases the driver's clients.
func (d *Driver) Close() {
	for _, c := range []*client.Client{d.mutCl, d.getCl} {
		if c != nil {
			//roslint:besteffort client teardown
			_ = c.Close()
		}
	}
	for _, r := range []*client.Routed{d.mutR, d.getR} {
		if r != nil {
			//roslint:besteffort client teardown
			_ = r.Close()
		}
	}
}

// History returns the recorded external history.
func (d *Driver) History() *crashtest.ExtHistory { return d.hist }

// Pending returns the transactions the heal phase must re-drive.
func (d *Driver) Pending() []*PendingTxn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*PendingTxn(nil), d.pending...)
}

// Touched returns every key the workload addressed, sorted, with its
// class (blob or counter) — the final-probe worklist.
func (d *Driver) Touched() (keys []string, isBlob map[string]bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	isBlob = make(map[string]bool, len(d.touched))
	for k, b := range d.touched {
		keys = append(keys, k)
		isBlob[k] = b
	}
	sort.Strings(keys)
	return keys, isBlob
}

// Counts reports the attempt tally by outcome.
func (d *Driver) Counts() (acked, inDoubt, notExec int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.acked, d.inDoubt, d.notExec
}

// Prime fetches the routing table (sharded) or pings the node so the
// first real op doesn't pay discovery latency; retried until deadline.
func (d *Driver) Prime(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var err error
		if d.cfg.Sharded {
			_, err = d.getR.Refresh()
		} else {
			err = d.getCl.Ping()
		}
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: driver prime: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Run issues cfg.Ops attempts at the configured QPS with the bounded
// in-flight window and blocks until every attempt has completed.
func (d *Driver) Run() {
	interval := time.Second / time.Duration(d.cfg.Workload.QPS)
	sem := make(chan struct{}, d.cfg.Workload.InFlight)
	var wg sync.WaitGroup
	next := time.Now()
	for n := 1; n <= d.cfg.Ops; n++ {
		if d.cfg.OnIssued != nil {
			d.cfg.OnIssued(n)
		}
		op := d.gen.Next()
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			d.attempt(op)
		}()
		next = next.Add(interval)
		if pause := time.Until(next); pause > 0 {
			time.Sleep(pause)
		}
	}
	wg.Wait()
}

// attempt executes one op under its key locks and records the result.
func (d *Driver) attempt(op workload.Op) {
	// Sorted distinct lock order prevents driver-side deadlock; the
	// generator already emits distinct keys per op.
	idx := append([]uint32(nil), op.Keys...)
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	for _, k := range idx {
		d.keyLocks[k].Lock()
	}
	defer func() {
		for i := len(idx) - 1; i >= 0; i-- {
			d.keyLocks[idx[i]].Unlock()
		}
	}()

	var att crashtest.ExtAttempt
	switch op.Kind {
	case workload.KindGet:
		att = d.get(op)
	case workload.KindPut:
		att = d.put(op)
	case workload.KindIncr:
		att = d.incr(op)
	case workload.KindTxn:
		att = d.txn(op)
	default:
		return
	}
	d.record(op, att)
}

func (d *Driver) record(op workload.Op, att crashtest.ExtAttempt) {
	// ExtHistory.Record is not safe for concurrent use; d.mu is the
	// history's writer lock. (Cross-key append order is arbitrary —
	// the oracle serializes per key, and per-key order is already
	// fixed by the key locks held through this call.)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hist.Record(att)
	for _, k := range op.Keys {
		d.touched[workload.KeyName(k)] = d.cfg.Workload.IsBlobKey(k)
	}
	switch att.Outcome {
	case crashtest.ExtAcked:
		d.acked++
	case crashtest.ExtInDoubt:
		d.inDoubt++
	default:
		d.notExec++
	}
}

// classify maps a client error to the oracle outcome for a mutating
// op: refused or remotely aborted means not executed; anything below
// the reply means in doubt.
func classify(err error) crashtest.ExtOutcome {
	switch {
	case err == nil:
		return crashtest.ExtAcked
	case errors.Is(err, client.ErrBusy), errors.Is(err, wire.ErrRemote):
		return crashtest.ExtNotExecuted
	default:
		return crashtest.ExtInDoubt
	}
}

// invoke routes one single-key handler call through the right client.
func (d *Driver) invoke(mutating bool, key, handler string, arg value.Value) (value.Value, error) {
	if d.cfg.Sharded {
		r := d.getR
		if mutating {
			r = d.mutR
		}
		return r.Invoke(key, handler, arg)
	}
	c := d.getCl
	if mutating {
		c = d.mutCl
	}
	return c.Invoke(handler, arg)
}

func (d *Driver) get(op workload.Op) crashtest.ExtAttempt {
	key := workload.KeyName(op.Keys[0])
	att := crashtest.ExtAttempt{Kind: crashtest.ExtGet, Keys: []string{key}}
	v, err := d.invoke(false, key, "get", value.Str(key))
	switch {
	case err == nil:
		att.Outcome = crashtest.ExtAcked
		att.GetValue = renderValue(v)
	case errors.Is(err, wire.ErrRemote) && strings.Contains(err.Error(), "no such key"):
		att.Outcome = crashtest.ExtAcked
		att.GetAbsent = true
	default:
		// A failed read constrains nothing; record it for the tally
		// only. (classify never returns Acked here: err != nil.)
		att.Outcome = classify(err)
	}
	return att
}

func (d *Driver) put(op workload.Op) crashtest.ExtAttempt {
	key := workload.KeyName(op.Keys[0])
	att := crashtest.ExtAttempt{Kind: crashtest.ExtPut, Keys: []string{key}, Value: string(op.Value)}
	_, err := d.invoke(true, key, "put", &value.List{Elems: []value.Value{
		value.Str(key), value.Str(op.Value),
	}})
	att.Outcome = classify(err)
	return att
}

func (d *Driver) incr(op workload.Op) crashtest.ExtAttempt {
	key := workload.KeyName(op.Keys[0])
	att := crashtest.ExtAttempt{Kind: crashtest.ExtIncr, Keys: []string{key}, Deltas: []int64{op.Deltas[0]}}
	_, err := d.invoke(true, key, "incr", &value.List{Elems: []value.Value{
		value.Str(key), value.Int(op.Deltas[0]),
	}})
	att.Outcome = classify(err)
	return att
}

// txn runs one cross-shard transaction: every key joins its owning
// shard's guardian as a 2PC participant and the commit is client-
// driven. Only issued on sharded topologies.
func (d *Driver) txn(op workload.Op) crashtest.ExtAttempt {
	keys := make([]string, len(op.Keys))
	for i, k := range op.Keys {
		keys[i] = workload.KeyName(k)
	}
	att := crashtest.ExtAttempt{Kind: crashtest.ExtTxn, Keys: keys, Deltas: append([]int64(nil), op.Deltas...)}
	t, err := d.mutR.Begin(keys[0])
	if err != nil {
		// Begin only mints the action id; no data effect is possible.
		att.Outcome = crashtest.ExtNotExecuted
		return att
	}
	for i, k := range keys {
		if _, err := t.Invoke(k, "incr", &value.List{Elems: []value.Value{
			value.Str(k), value.Int(op.Deltas[i]),
		}}); err != nil {
			// A leg may have executed with the reply lost; no
			// committing record can exist (Commit never ran), so the
			// verdict is the presumed abort — but the abort must still
			// be delivered everywhere once the cluster heals, or the
			// leg's locks outlive the episode.
			//roslint:besteffort immediate abort of the joined legs; the heal-phase re-drive finishes the job
			_ = t.Abort()
			att.Outcome = crashtest.ExtInDoubt
			d.retain(t, keys, twopc.OutcomeAborted)
			return att
		}
	}
	res, err := t.Commit()
	switch {
	case err == nil:
		att.Outcome = crashtest.ExtAcked
		if !res.Done {
			// Committed but some participant missed its commit
			// message: Complete must be re-driven after heal.
			d.retain(t, keys, twopc.OutcomeCommitted)
		}
	case errors.Is(err, twopc.ErrAborted):
		// The coordinator decided abort before the point of no return.
		att.Outcome = crashtest.ExtNotExecuted
		d.retain(t, keys, twopc.OutcomeAborted)
	default:
		// The commit was interrupted: the committing record may or may
		// not have been forced. The heal phase asks the coordinator.
		att.Outcome = crashtest.ExtInDoubt
		d.retain(t, keys, twopc.OutcomeUnknown)
	}
	return att
}

func (d *Driver) retain(t *client.Txn, keys []string, verdict twopc.Outcome) {
	d.mu.Lock()
	d.pending = append(d.pending, &PendingTxn{Txn: t, Keys: keys, Verdict: verdict})
	d.mu.Unlock()
}

// renderValue renders a stored value the way the oracle's final-state
// maps expect: decimal for counters, raw bytes for blobs.
func renderValue(v value.Value) string {
	switch x := v.(type) {
	case value.Int:
		return strconv.FormatInt(int64(x), 10)
	case value.Str:
		return string(x)
	default:
		return fmt.Sprint(v)
	}
}
