package chaos

import (
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos/workload"
)

// Binaries are built once per test run; episodes share them.
var (
	binDir  string
	binRosd string
	binCtl  string
)

func TestMain(m *testing.M) {
	var code int
	func() {
		var err error
		binDir, err = os.MkdirTemp("", "chaosbin-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
			return
		}
		defer os.RemoveAll(binDir)
		root, err := ModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
			return
		}
		binRosd, binCtl, err = BuildBinaries(root, binDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
			return
		}
		code = m.Run()
	}()
	os.Exit(code)
}

// --- proxy unit tests -------------------------------------------------

// echoServer accepts connections and echoes bytes back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				wg.Wait()
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, err := c.Write(buf[:n]); err != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				c.Close()
			}()
		}
	}()
	return ln
}

func roundtrip(t *testing.T, addr string) error {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return err
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		return err
	}
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err != nil {
		return err
	}
	if string(buf) != "ping" {
		return fmt.Errorf("echoed %q", buf)
	}
	return nil
}

func TestProxyPartitionHealDelay(t *testing.T) {
	ln := echoServer(t)
	defer ln.Close()
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if err := roundtrip(t, p.Addr()); err != nil {
		t.Fatalf("healthy roundtrip: %v", err)
	}

	p.Partition()
	if err := roundtrip(t, p.Addr()); err == nil {
		t.Fatal("roundtrip succeeded across a partition")
	}

	p.Heal()
	if err := roundtrip(t, p.Addr()); err != nil {
		t.Fatalf("roundtrip after heal: %v", err)
	}

	p.SetDelay(0, 80*time.Millisecond)
	start := time.Now()
	if err := roundtrip(t, p.Addr()); err != nil {
		t.Fatalf("delayed roundtrip: %v", err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("read delay not applied: roundtrip took %v", d)
	}
}

// --- full episodes ----------------------------------------------------

// requireEpisode runs one episode and fails the test on any harness
// error, oracle violation, checker violation, or errored fault
// injection.
func requireEpisode(t *testing.T, cfg EpisodeConfig) *Report {
	t.Helper()
	cfg.RosdBin, cfg.CtlBin = binRosd, binCtl
	rep, err := RunEpisode(cfg)
	if rep != nil {
		t.Logf("episode: acked=%d inDoubt=%d notExec=%d redriven=%d promoted=%q mergedEvents=%d truncated=%v oracleStates=%d idxProbed=%d",
			rep.Acked, rep.InDoubt, rep.NotExecuted, rep.Redriven, rep.Promoted,
			rep.MergedEvents, rep.TruncatedTraces, rep.OracleStates, rep.IndexProbed)
	}
	if err != nil {
		t.Fatalf("episode harness: %v", err)
	}
	for _, f := range rep.Faults {
		if f.Error != "" {
			t.Errorf("fault %s on %s at op %d: %s", f.Kind, f.Node, f.AtOp, f.Error)
		}
	}
	if rep.OracleErr != "" {
		t.Errorf("oracle: %s", rep.OracleErr)
	}
	for _, v := range rep.CheckerViolations {
		t.Errorf("checker: %s", v)
	}
	for _, w := range rep.MergeWarnings {
		t.Logf("merge warning: %s", w)
	}
	if rep.Acked == 0 {
		t.Error("no op was ever acked — the episode exercised nothing")
	}
	if rep.MergedEvents == 0 {
		t.Error("merged trace is empty")
	}
	for _, m := range rep.IndexMismatch {
		t.Errorf("index read-back: %s", m)
	}
	if rep.IndexProbed == 0 {
		t.Error("index read-back probed no keys")
	}
	return rep
}

// TestEpisodeReplicated drives a 3-process replicated cluster through
// four faults — a paused backup, a partitioned backup, an injected-
// latency backup, and a SIGKILLed primary mid-traffic — then promotes
// the longest backup through rosctl and verifies no acked op was lost
// and the merged trace holds every checker invariant.
func TestEpisodeReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process episode")
	}
	wcfg := workload.Default()
	wcfg.Keys = 48
	wcfg.IncrPct += wcfg.TxnPct // replication has one shard; no cross-shard txns
	wcfg.TxnPct = 0
	wcfg.QPS = 200
	wcfg.InFlight = 8

	rep := requireEpisode(t, EpisodeConfig{
		Topology: TopologyReplicated,
		Workload: wcfg,
		Seed:     7,
		Ops:      400,
		Dir:      t.TempDir(),
		Faults: []FaultSpec{
			{AtOp: 80, Kind: FaultPause, Node: 1, Duration: 500 * time.Millisecond},
			{AtOp: 160, Kind: FaultPartition, Node: 2, Duration: 500 * time.Millisecond},
			{AtOp: 240, Kind: FaultDelay, Node: 1, Duration: 300 * time.Millisecond,
				Connect: 30 * time.Millisecond, Read: 10 * time.Millisecond},
			{AtOp: 340, Kind: FaultKill, Node: 0},
		},
	})
	if rep.Promoted == "" {
		t.Error("primary was killed but no backup was promoted")
	}
	if len(rep.Faults) != 4 {
		t.Errorf("injected %d faults, want 4", len(rep.Faults))
	}
}

// TestEpisodeSharded drives the 4-shard 3-process cluster — with live
// cross-shard transactions in the mix — through a paused node, a
// partitioned node, and a SIGKILL of node0 (which hosts two shards and
// so coordinates most transactions) timed to land while a transaction
// is in flight. The heal phase restarts the dead process, whose
// recovery replays its log and settles its own in-doubt actions, and
// re-drives every interrupted commit; then the oracle checks
// conservation across shards and the checker sweeps the merged trace.
func TestEpisodeSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process episode")
	}
	wcfg := workload.Default() // TxnPct 10: cross-shard transfers live
	wcfg.QPS = 200
	wcfg.InFlight = 8
	const seed, ops = 11, 400

	// Time the kill to land right after a transaction dispatches, so
	// the SIGKILL hits its coordinator mid-commit: replay the
	// deterministic op stream and pick the last txn in the 60–90% band.
	atKill := ops * 17 / 20
	gen, err := workload.New(wcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= ops*9/10; i++ {
		op := gen.Next()
		if op.Kind == workload.KindTxn && i >= ops*6/10 {
			atKill = i + 1
		}
	}

	rep := requireEpisode(t, EpisodeConfig{
		Topology: TopologySharded,
		Workload: wcfg,
		Seed:     seed,
		Ops:      ops,
		Dir:      t.TempDir(),
		Faults: []FaultSpec{
			{AtOp: 80, Kind: FaultPause, Node: 2, Duration: 500 * time.Millisecond},
			{AtOp: 160, Kind: FaultPartition, Node: 1, Duration: 500 * time.Millisecond},
			{AtOp: atKill, Kind: FaultKill, Node: 0},
		},
	})
	if len(rep.Faults) != 3 {
		t.Errorf("injected %d faults, want 3", len(rep.Faults))
	}
}

// TestEpisodeShardedHandoff moves a shard between live nodes in the
// middle of the workload: shard 4 is drained off node1, shipped, and
// adopted by node2 (which recovers over the shipped log and rebuilds
// the shard's live-version index from scratch) while clients keep
// writing through the stale route and converging via wrong-shard
// refusals. A node kill later in the run layers a restart recovery on
// top. The index read-back then verifies every key — including the
// rehomed shard's — answers its committed value through OpGet.
func TestEpisodeShardedHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process episode")
	}
	wcfg := workload.Default()
	wcfg.QPS = 200
	wcfg.InFlight = 8

	rep := requireEpisode(t, EpisodeConfig{
		Topology: TopologySharded,
		Workload: wcfg,
		Seed:     19,
		Ops:      400,
		Dir:      t.TempDir(),
		Faults: []FaultSpec{
			{AtOp: 120, Kind: FaultHandoff, Node: 1, Shard: 4, Target: 2},
			{AtOp: 300, Kind: FaultKill, Node: 1},
		},
	})
	if len(rep.Faults) != 2 {
		t.Errorf("injected %d faults, want 2", len(rep.Faults))
	}
	if !rep.Passed() {
		t.Error("episode did not pass both authorities and the index read-back")
	}
}

// TestEpisodeDiskFull runs a standalone node into a size-capped data
// directory mid-traffic: stable-storage growth starts failing like a
// full disk, the node keeps refusing work it cannot make durable, and
// after an uncapped restart the oracle confirms no acked op leaked and
// no refused op left an effect.
func TestEpisodeDiskFull(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process episode")
	}
	wcfg := workload.Default()
	wcfg.Keys = 32
	wcfg.IncrPct += wcfg.TxnPct
	wcfg.TxnPct = 0
	wcfg.QPS = 200
	wcfg.InFlight = 8

	requireEpisode(t, EpisodeConfig{
		Topology: TopologyStandalone,
		Workload: wcfg,
		Seed:     3,
		Ops:      240,
		Dir:      t.TempDir(),
		Faults: []FaultSpec{
			{AtOp: 80, Kind: FaultDiskFull, Node: 0, Slack: 8 << 10},
		},
	})
}
