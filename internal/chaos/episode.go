package chaos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos/workload"
	"repro/internal/client"
	"repro/internal/crashtest"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/twopc"
	"repro/internal/value"
	"repro/internal/wire"
)

// FaultKind names one injectable failure.
type FaultKind string

const (
	// FaultKill SIGKILLs the node mid-traffic; the heal phase restarts
	// it (or, for a replicated primary, promotes a backup).
	FaultKill FaultKind = "kill"
	// FaultPause SIGSTOPs the node for Duration, then SIGCONTs it —
	// the process survives with all its volatile state, but every call
	// into it stalls into the callers' deadlines.
	FaultPause FaultKind = "pause"
	// FaultPartition cuts the node's proxy for Duration: established
	// connections reset, new ones refused.
	FaultPartition FaultKind = "partition"
	// FaultDelay injects connect/read latency at the node's proxy for
	// Duration.
	FaultDelay FaultKind = "delay"
	// FaultDiskFull restarts the node with a -datacap just above its
	// current footprint, so ongoing traffic fills the "disk" and
	// forces start failing; heal restarts it uncapped.
	FaultDiskFull FaultKind = "diskfull"
	// FaultHandoff moves Shard from Node to Target mid-traffic through
	// the operator path (rosctl handoff), concurrently with the
	// workload — the receiving node adopts the shard by recovering over
	// the shipped log, rebuilding its live-version index from scratch.
	// The heal phase waits for it to land.
	FaultHandoff FaultKind = "handoff"
)

// FaultSpec schedules one fault at an issued-op threshold.
type FaultSpec struct {
	// AtOp injects the fault just before the AtOp-th op (1-based) is
	// issued.
	AtOp int
	Kind FaultKind
	// Node indexes Cluster.Nodes.
	Node int
	// Duration bounds pause/partition/delay; the fault self-heals
	// after it (kill and diskfull heal in the heal phase instead).
	Duration time.Duration
	// Connect/Read are the injected delays (FaultDelay).
	Connect, Read time.Duration
	// Slack is how many bytes of growth FaultDiskFull leaves before
	// the disk is full (default 16 KiB).
	Slack int64
	// Shard and Target drive FaultHandoff: move Shard off Node to
	// Cluster.Nodes[Target].
	Shard  uint32
	Target int
}

// FaultNote records one injected fault for the episode report.
type FaultNote struct {
	Kind  string `json:"kind"`
	Node  string `json:"node"`
	AtOp  int    `json:"at_op"`
	Error string `json:"error,omitempty"`
}

// Report is the episode summary — the artifact the CI job uploads on
// failure.
type Report struct {
	Topology    string      `json:"topology"`
	Seed        int64       `json:"seed"`
	Ops         int         `json:"ops"`
	Acked       int         `json:"acked"`
	InDoubt     int         `json:"in_doubt"`
	NotExecuted int         `json:"not_executed"`
	Faults      []FaultNote `json:"faults"`
	// Redriven counts interrupted cross-shard transactions resolved in
	// the heal phase; Promoted names the backup that took over, if
	// any.
	Redriven int    `json:"redriven"`
	Promoted string `json:"promoted,omitempty"`
	// Oracle accounting (crashtest.ExtReport).
	OracleKeys       int    `json:"oracle_keys"`
	OracleComponents int    `json:"oracle_components"`
	OracleStates     int    `json:"oracle_states"`
	OracleErr        string `json:"oracle_err,omitempty"`
	// Merged-trace accounting.
	MergedEvents      int      `json:"merged_events"`
	TruncatedTraces   []string `json:"truncated_traces,omitempty"`
	MergeWarnings     []string `json:"merge_warnings,omitempty"`
	CheckerViolations []string `json:"checker_violations,omitempty"`
	// Index read-back: every probed key is read a second time through
	// OpGet (the path the live-version index serves) and compared
	// against the action-path probe. A mismatch means the index
	// diverged from committed state across the episode's crashes,
	// restarts, promotions, or handoffs.
	IndexProbed   int      `json:"index_probed"`
	IndexMismatch []string `json:"index_mismatch,omitempty"`
}

// Passed reports whether the episode met its authorities: the serial
// oracle accepted the external history, the merged trace ran clean
// through the checker, and the index read-back matched the probed end
// state.
func (r *Report) Passed() bool {
	return r.OracleErr == "" && len(r.CheckerViolations) == 0 && len(r.IndexMismatch) == 0
}

// EpisodeConfig is one full chaos episode: a topology, a workload, a
// fault schedule, and the scratch directory the artifacts land in.
type EpisodeConfig struct {
	Topology Topology
	Workload workload.Config
	Seed     int64
	Ops      int
	Faults   []FaultSpec
	// Dir is the scratch directory; required.
	Dir string
	// RosdBin/CtlBin are prebuilt binaries; when empty the episode
	// builds them into Dir (needs the go toolchain on PATH).
	RosdBin, CtlBin string
}

// episode carries one run's moving parts.
type episode struct {
	cfg     EpisodeConfig
	cluster *Cluster
	driver  *Driver
	report  *Report
	// lastQuorum is the primary's last observed quorum-acked byte
	// count, captured just before a primary kill — the promotion
	// safety floor.
	lastQuorum uint64
	// killedPrimary marks that heal must promote instead of restart.
	killedPrimary bool
	// probeAddr overrides the final-probe target (the promoted node).
	probeAddr string
	// handoffs tracks in-flight FaultHandoff injections; the heal phase
	// waits for each before re-driving anything that routes by shard.
	handoffs []pendingHandoff
}

// pendingHandoff is one FaultHandoff running concurrently with the
// workload.
type pendingHandoff struct {
	atOp   int
	shard  uint32
	target int
	done   chan error
}

// RunEpisode runs one chaos episode end to end: start the cluster,
// drive the seeded workload while injecting the scheduled faults, heal
// everything, re-drive interrupted commits and promotion through the
// operator paths, probe the end state against the serial oracle, then
// merge the per-process traces and run the invariant checker. The
// returned Report carries both verdicts; err is reserved for harness
// failures (a cluster that never started, an unreachable probe).
func RunEpisode(cfg EpisodeConfig) (*Report, error) {
	if cfg.Topology != TopologySharded && cfg.Workload.TxnPct != 0 {
		return nil, fmt.Errorf("chaos: cross-shard txns need the sharded topology")
	}
	if cfg.RosdBin == "" || cfg.CtlBin == "" {
		root, err := ModuleRoot()
		if err != nil {
			return nil, err
		}
		cfg.RosdBin, cfg.CtlBin, err = BuildBinaries(root, cfg.Dir)
		if err != nil {
			return nil, err
		}
	}
	cl, err := NewCluster(ClusterConfig{
		Topology: cfg.Topology, Dir: cfg.Dir, RosdBin: cfg.RosdBin, CtlBin: cfg.CtlBin,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.Start(); err != nil {
		return nil, err
	}

	ep := &episode{
		cfg:     cfg,
		cluster: cl,
		report: &Report{
			Topology: string(cfg.Topology), Seed: cfg.Seed, Ops: cfg.Ops,
		},
	}
	drv, err := NewDriver(DriverConfig{
		Workload: cfg.Workload,
		Seed:     cfg.Seed,
		Ops:      cfg.Ops,
		Seeds:    cl.Seeds(),
		Sharded:  cfg.Topology == TopologySharded,
		OnIssued: ep.onIssued,
	})
	if err != nil {
		return nil, err
	}
	ep.driver = drv
	defer drv.Close()
	if err := drv.Prime(10 * time.Second); err != nil {
		return nil, err
	}

	drv.Run()
	ep.report.Acked, ep.report.InDoubt, ep.report.NotExecuted = drv.Counts()

	if err := ep.heal(); err != nil {
		return ep.report, err
	}
	if err := ep.redrive(); err != nil {
		return ep.report, err
	}
	// Quiesce: let straggling server-side work (a SIGCONTed process
	// finishing an old action, re-driven commits applying) settle.
	time.Sleep(300 * time.Millisecond)

	if err := ep.probe(); err != nil {
		return ep.report, err
	}
	if err := ep.traces(); err != nil {
		return ep.report, err
	}
	return ep.report, nil
}

// onIssued fires scheduled faults from the dispatch loop.
func (ep *episode) onIssued(n int) {
	for i := range ep.cfg.Faults {
		f := &ep.cfg.Faults[i]
		if f.AtOp != n {
			continue
		}
		note := FaultNote{Kind: string(f.Kind), Node: ep.cluster.Nodes[f.Node].Name, AtOp: n}
		if err := ep.inject(*f); err != nil {
			note.Error = err.Error()
		}
		ep.report.Faults = append(ep.report.Faults, note)
	}
}

// inject launches one fault. Self-healing faults (pause, partition,
// delay) arm their own timers so traffic keeps flowing meanwhile.
func (ep *episode) inject(f FaultSpec) error {
	nd := ep.cluster.Nodes[f.Node]
	switch f.Kind {
	case FaultKill:
		if ep.cfg.Topology == TopologyReplicated && f.Node == ep.cluster.PrimaryIndex {
			// Capture the promotion safety floor before the murder.
			c := client.New(nd.Proxy.Addr(), client.Options{CallTimeout: time.Second, MaxAttempts: 1})
			if st, err := c.Status(); err == nil {
				ep.lastQuorum = st.Rep.QuorumBytes
			}
			//roslint:besteffort status client teardown
			_ = c.Close()
			ep.killedPrimary = true
		}
		return nd.Kill()
	case FaultPause:
		if err := nd.Pause(); err != nil {
			return err
		}
		if f.Duration > 0 {
			time.AfterFunc(f.Duration, func() {
				_ = nd.Resume() // the heal phase resumes again regardless
			})
		}
		return nil
	case FaultPartition:
		nd.Proxy.Partition()
		if f.Duration > 0 {
			time.AfterFunc(f.Duration, nd.Proxy.Heal)
		}
		return nil
	case FaultDelay:
		nd.Proxy.SetDelay(f.Connect, f.Read)
		if f.Duration > 0 {
			time.AfterFunc(f.Duration, func() { nd.Proxy.SetDelay(0, 0) })
		}
		return nil
	case FaultDiskFull:
		slack := f.Slack
		if slack <= 0 {
			slack = 16 << 10
		}
		used, err := dirSize(nd.DataDir)
		if err != nil {
			return err
		}
		if err := nd.Kill(); err != nil {
			return err
		}
		return ep.cluster.StartNode(nd, []string{"-datacap", strconv.FormatInt(used+slack, 10)})
	case FaultHandoff:
		if ep.cfg.Topology != TopologySharded {
			return fmt.Errorf("chaos: handoff fault needs the sharded topology")
		}
		target := ep.cluster.Nodes[f.Target].Proxy.Addr()
		h := pendingHandoff{atOp: f.AtOp, shard: f.Shard, target: f.Target, done: make(chan error, 1)}
		ep.handoffs = append(ep.handoffs, h)
		// The operator call runs concurrently with the workload — a
		// handoff is an online operation, and the episode's point is the
		// traffic that races it. The heal phase joins it.
		go func() {
			out, err := ep.cluster.Ctl(nd.Proxy.Addr(), "handoff",
				strconv.FormatUint(uint64(f.Shard), 10), target)
			if err != nil {
				h.done <- fmt.Errorf("rosctl handoff: %v\n%s", err, out)
				return
			}
			h.done <- nil
		}()
		return nil
	default:
		return fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
	}
}

// heal undoes every fault: resume paused processes, heal proxies,
// restart the dead — and for a killed replicated primary, promote the
// backup with the longest durable log through rosctl.
func (ep *episode) heal() error {
	for _, nd := range ep.cluster.Nodes {
		_ = nd.Resume() // resuming a process that was never stopped is a no-op
		nd.Proxy.Heal()
	}
	for i, nd := range ep.cluster.Nodes {
		if nd.Running() {
			continue
		}
		if ep.killedPrimary && ep.cfg.Topology == TopologyReplicated && i == ep.cluster.PrimaryIndex {
			continue // promoted below, not restarted
		}
		if err := ep.cluster.StartNode(nd, nil); err != nil {
			return err
		}
		if err := ep.cluster.WaitUp(nd, 10*time.Second); err != nil {
			return err
		}
	}
	// Nodes restarted by the diskfull fault carry a cap; relaunch them
	// uncapped so recovery traffic has room.
	for _, f := range ep.cfg.Faults {
		if f.Kind != FaultDiskFull {
			continue
		}
		nd := ep.cluster.Nodes[f.Node]
		if err := nd.Kill(); err != nil {
			return err
		}
		if err := ep.cluster.StartNode(nd, nil); err != nil {
			return err
		}
		if err := ep.cluster.WaitUp(nd, 10*time.Second); err != nil {
			return err
		}
	}
	if ep.killedPrimary {
		best, err := ep.cluster.Promote(ep.lastQuorum)
		if err != nil {
			return err
		}
		ep.report.Promoted = best.Name
		ep.probeAddr = best.Proxy.Addr()
	}
	// Join every in-flight handoff: a failure is a fault error (the
	// report carries it), a success rehomes the shard for everything
	// that still addresses nodes by shard (outcome queries, aborts).
	for _, h := range ep.handoffs {
		err := <-h.done
		if err != nil {
			for i := range ep.report.Faults {
				n := &ep.report.Faults[i]
				if n.Kind == string(FaultHandoff) && n.AtOp == h.atOp && n.Error == "" {
					n.Error = err.Error()
					break
				}
			}
			continue
		}
		ep.cluster.ShardAddrs[h.shard] = ep.cluster.Nodes[h.target].Proxy.Addr()
	}
	return nil
}

// redrive finishes every interrupted cross-shard commit through the
// standard completion protocol: ask the coordinator shard for the
// outcome (its committing record is the authority), then deliver the
// missing phase-two messages — Complete for committed, aborts
// everywhere the transaction might have touched for aborted.
func (ep *episode) redrive() error {
	pending := ep.driver.Pending()
	if len(pending) == 0 {
		return nil
	}
	if ep.cfg.Topology != TopologySharded {
		return fmt.Errorf("chaos: %d pending txns on a non-sharded topology", len(pending))
	}
	for _, p := range pending {
		verdict := p.Verdict
		aid := p.Txn.AID()
		if verdict == twopc.OutcomeUnknown {
			out, err := ep.queryOutcome(aid)
			if err != nil {
				return fmt.Errorf("chaos: outcome of %v: %w", aid, err)
			}
			verdict = out
		}
		if verdict == twopc.OutcomeCommitted {
			if err := ep.complete(p); err != nil {
				return err
			}
		} else {
			ep.abortEverywhere(p)
		}
		ep.report.Redriven++
	}
	return nil
}

// queryOutcome asks the coordinator shard's guardian for aid's fate,
// retrying while the healed cluster finishes coming up.
func (ep *episode) queryOutcome(aid ids.ActionID) (twopc.Outcome, error) {
	sh := uint32(aid.Coordinator)
	addr, ok := ep.cluster.ShardAddrs[sh]
	if !ok {
		return twopc.OutcomeUnknown, fmt.Errorf("no node hosts coordinator shard %d", sh)
	}
	c := client.New(addr, client.Options{CallTimeout: 2 * time.Second})
	//roslint:besteffort outcome-query client teardown
	defer c.Close()
	var last error
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		out, err := c.OutcomeShard(sh, aid)
		if err == nil {
			return out, nil
		}
		last = err
		time.Sleep(100 * time.Millisecond)
	}
	return twopc.OutcomeUnknown, last
}

// complete re-drives phase two for a committed transaction.
func (ep *episode) complete(p *PendingTxn) error {
	var last error
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		res, err := p.Txn.Complete()
		if err == nil && res.Done {
			return nil
		}
		if err != nil {
			last = err
		} else {
			last = fmt.Errorf("participants unresponsive: %v", res.Unresponsive)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("chaos: complete %v: %w", p.Txn.AID(), last)
}

// abortEverywhere delivers the abort verdict to every shard the
// transaction intended to touch — including ones whose join reply was
// lost, where a live subaction may still hold the keys' locks. An
// abort for an action a shard never saw errors harmlessly (presumed
// abort: unknown means aborted).
func (ep *episode) abortEverywhere(p *PendingTxn) {
	//roslint:besteffort abort of an already-presumed-aborted action; unreachable shards are retried below, shard by shard
	_ = p.Txn.Abort()
	tbl, ok := ep.driver.getR.Table()
	if !ok {
		return
	}
	aid := p.Txn.AID()
	for _, k := range p.Keys {
		owner := tbl.Owner(k)
		c := client.New(owner.Addr, client.Options{CallTimeout: 2 * time.Second, MaxAttempts: 1})
		//roslint:besteffort an abort for an action the shard never saw is expected to error
		_ = c.AbortShard(uint32(owner.ID), aid)
		//roslint:besteffort teardown
		_ = c.Close()
	}
}

// probe reads back every touched key and hands the oracle its final
// state. Each read retries until definitive — a value or a no-such-key
// — because the healed cluster owes us an answer for every key.
func (ep *episode) probe() error {
	keys, isBlob := ep.driver.Touched()
	final := crashtest.ExtFinal{Counters: map[string]int64{}, Blobs: map[string]string{}}

	// read goes through the action path (an invoked "get" handler);
	// idxRead goes through OpGet, the path the live-version index
	// serves. The episode's last assertion compares the two.
	var read, idxRead func(key string) (string, bool, error)
	if ep.cfg.Topology == TopologySharded {
		read = func(key string) (string, bool, error) {
			v, err := ep.driver.getR.Invoke(key, "get", value.Str(key))
			return decodeProbe(v, err)
		}
		idxRead = func(key string) (string, bool, error) {
			v, err := ep.driver.getR.Get(key)
			return decodeProbe(v, err)
		}
	} else {
		addr := ep.probeAddr
		if addr == "" {
			addr = ep.cluster.Nodes[0].Proxy.Addr()
		}
		c := client.New(addr, client.Options{CallTimeout: 2 * time.Second})
		//roslint:besteffort probe client teardown
		defer c.Close()
		read = func(key string) (string, bool, error) {
			v, err := c.Invoke("get", value.Str(key))
			return decodeProbe(v, err)
		}
		idxRead = func(key string) (string, bool, error) {
			v, err := c.Get(key)
			return decodeProbe(v, err)
		}
	}

	retry := func(key string, f func(string) (string, bool, error)) (string, bool, error) {
		for deadline := time.Now().Add(10 * time.Second); ; {
			val, present, err := f(key)
			if err == nil {
				return val, present, nil
			}
			if time.Now().After(deadline) {
				return "", false, err
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	for _, key := range keys {
		val, present, err := retry(key, read)
		if err != nil {
			return fmt.Errorf("chaos: probe %s: %w", key, err)
		}
		if !present {
			continue
		}
		if isBlob[key] {
			final.Blobs[key] = val
		} else {
			n, perr := strconv.ParseInt(val, 10, 64)
			if perr != nil {
				return fmt.Errorf("chaos: probe %s: counter value %q: %v", key, val, perr)
			}
			final.Counters[key] = n
		}
	}

	rep, err := crashtest.CheckExternal(ep.driver.History(), final)
	ep.report.OracleKeys = rep.Keys
	ep.report.OracleComponents = rep.Components
	ep.report.OracleStates = rep.States
	if err != nil {
		ep.report.OracleErr = err.Error()
	}

	// Index read-back: every touched key again, through the index-served
	// path. Present keys must answer the same rendered value the action
	// path just probed; absent keys must answer no-such-key. The crash
	// sweeps already prove the rebuilt index byte-equal after every
	// single crash point — this closes the loop end to end, across real
	// processes, promotions, and handoffs.
	for _, key := range keys {
		val, present, err := retry(key, idxRead)
		if err != nil {
			return fmt.Errorf("chaos: index probe %s: %w", key, err)
		}
		ep.report.IndexProbed++
		var want string
		wantPresent := false
		if isBlob[key] {
			want, wantPresent = final.Blobs[key], hasKey(final.Blobs, key)
		} else if n, ok := final.Counters[key]; ok {
			want, wantPresent = strconv.FormatInt(n, 10), true
		}
		switch {
		case present != wantPresent:
			ep.report.IndexMismatch = append(ep.report.IndexMismatch,
				fmt.Sprintf("%s: index-served present=%v, action-path present=%v", key, present, wantPresent))
		case present && val != want:
			ep.report.IndexMismatch = append(ep.report.IndexMismatch,
				fmt.Sprintf("%s: index-served %q, action-path %q", key, val, want))
		}
	}
	return nil
}

// hasKey reports map membership for the probe's blob map (generics-free
// helper keeps the comparison above symmetric with the counter branch).
func hasKey(m map[string]string, k string) bool {
	_, ok := m[k]
	return ok
}

// traces drains every live node (the SIGTERM path fsyncs each trace),
// merges all per-process streams in start order, and runs the checker
// over the merged stream.
func (ep *episode) traces() error {
	for _, nd := range ep.cluster.Nodes {
		if nd.Running() {
			if err := nd.Drain(10 * time.Second); err != nil {
				return err
			}
		}
	}
	var streams []obs.NodeTrace
	for _, path := range ep.cluster.TraceOrder() {
		tf, err := obs.ReadTraceFile(path)
		if err != nil {
			return fmt.Errorf("chaos: trace %s: %w", path, err)
		}
		if tf.Truncated {
			ep.report.TruncatedTraces = append(ep.report.TruncatedTraces, filepath.Base(path))
		}
		streams = append(streams, obs.NodeTrace{Node: tf.Node, Events: tf.Events})
	}
	merged, warnings := obs.MergeTraces(streams)
	ep.report.MergedEvents = len(merged)
	ep.report.MergeWarnings = warnings
	ck := obs.NewChecker(nil)
	for _, e := range merged {
		ck.Emit(e)
	}
	ep.report.CheckerViolations = ck.Violations()
	return nil
}

// dirSize sums the file sizes under dir.
func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// decodeProbe folds one probe reply into (value, present, err): a
// definitive "no such key" remote error is a successful absent read,
// not a failure.
func decodeProbe(v value.Value, err error) (string, bool, error) {
	switch {
	case err == nil:
		return renderValue(v), true, nil
	case errors.Is(err, wire.ErrRemote) && strings.Contains(err.Error(), "no such key"):
		return "", false, nil
	default:
		return "", false, err
	}
}
