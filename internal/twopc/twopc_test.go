package twopc

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// mockPart is a scriptable participant.
type mockPart struct {
	id       ids.GuardianID
	vote     Vote
	prepares []ids.ActionID
	commits  []ids.ActionID
	aborts   []ids.ActionID
	failCmt  bool
}

func (m *mockPart) GuardianID() ids.GuardianID { return m.id }

func (m *mockPart) HandlePrepare(aid ids.ActionID) (Vote, error) {
	m.prepares = append(m.prepares, aid)
	return m.vote, nil
}

func (m *mockPart) HandleCommit(aid ids.ActionID) error {
	if m.failCmt {
		return errors.New("mock: commit handler down")
	}
	m.commits = append(m.commits, aid)
	return nil
}

func (m *mockPart) HandleAbort(aid ids.ActionID) error {
	m.aborts = append(m.aborts, aid)
	return nil
}

// mockLog is a scriptable coordinator log.
type mockLog struct {
	committing []ids.ActionID
	done       []ids.ActionID
	failCmt    bool
}

func (m *mockLog) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	if m.failCmt {
		return errors.New("mock: stable storage down")
	}
	m.committing = append(m.committing, aid)
	return nil
}

func (m *mockLog) Done(aid ids.ActionID) error {
	m.done = append(m.done, aid)
	return nil
}

var aid = ids.ActionID{Coordinator: 1, Seq: 7}

// simnet returns the coordinator's Net as the simulated network the
// fixtures install — the partition knobs (SetDown, Cut) live on the
// concrete netsim type, not the Transport interface.
func simnet(c *Coordinator) *netsim.Network { return c.Net.(*netsim.Network) }

func fixture(votes ...Vote) (*Coordinator, *mockLog, []*mockPart, []Participant) {
	clog := &mockLog{}
	c := &Coordinator{Self: 1, Net: netsim.New(), Log: clog}
	mocks := make([]*mockPart, len(votes))
	parts := make([]Participant, len(votes))
	for i, v := range votes {
		mocks[i] = &mockPart{id: ids.GuardianID(i + 1), vote: v}
		parts[i] = mocks[i]
	}
	return c, clog, mocks, parts
}

func TestRunAllPrepared(t *testing.T) {
	c, clog, mocks, parts := fixture(VotePrepared, VotePrepared, VotePrepared)
	res, err := c.Run(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCommitted || !res.Done {
		t.Fatalf("result = %+v", res)
	}
	if len(clog.committing) != 1 || len(clog.done) != 1 {
		t.Fatalf("coordinator log: %+v", clog)
	}
	for i, m := range mocks {
		if len(m.prepares) != 1 || len(m.commits) != 1 || len(m.aborts) != 0 {
			t.Fatalf("participant %d: %+v", i, m)
		}
	}
}

func TestRunOneVotesAbort(t *testing.T) {
	c, clog, mocks, parts := fixture(VotePrepared, VoteAborted, VotePrepared)
	res, err := c.Run(aid, parts)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if res.Outcome != OutcomeAborted {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if len(clog.committing) != 0 {
		t.Fatal("committing record written for aborted action")
	}
	// The participant that prepared before the abort vote hears abort.
	if len(mocks[0].aborts) != 1 {
		t.Fatalf("prepared participant not told to abort: %+v", mocks[0])
	}
	// The third participant never even saw a prepare (vote order stops
	// at the abort).
	if len(mocks[2].prepares) != 0 {
		t.Fatalf("participant after aborter was prepared: %+v", mocks[2])
	}
	if len(mocks[0].commits)+len(mocks[1].commits)+len(mocks[2].commits) != 0 {
		t.Fatal("some participant committed an aborted action")
	}
}

func TestRunParticipantUnreachable(t *testing.T) {
	c, clog, mocks, parts := fixture(VotePrepared, VotePrepared)
	simnet(c).SetDown(2, true)
	_, err := c.Run(aid, parts)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if len(clog.committing) != 0 {
		t.Fatal("committing written despite unreachable participant")
	}
	if len(mocks[0].aborts) != 1 {
		t.Fatal("reachable participant not aborted")
	}
}

func TestRunCommittingRecordFails(t *testing.T) {
	c, clog, mocks, parts := fixture(VotePrepared)
	clog.failCmt = true
	_, err := c.Run(aid, parts)
	if err == nil {
		t.Fatal("run succeeded without a committing record")
	}
	if len(mocks[0].aborts) != 1 {
		t.Fatal("participant not aborted after committing-record failure")
	}
}

func TestRunStragglerDefersDone(t *testing.T) {
	c, clog, mocks, parts := fixture(VotePrepared, VotePrepared)
	mocks[1].failCmt = true
	res, err := c.Run(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCommitted {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Done {
		t.Fatal("done despite straggler")
	}
	if len(res.Unresponsive) != 1 || res.Unresponsive[0] != 2 {
		t.Fatalf("unresponsive = %v", res.Unresponsive)
	}
	if len(clog.done) != 0 {
		t.Fatal("done record written with straggler outstanding")
	}
	// The straggler recovers; Complete re-drives phase two.
	mocks[1].failCmt = false
	res2, err := c.Complete(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Done {
		t.Fatalf("complete result = %+v", res2)
	}
	if len(clog.done) != 1 {
		t.Fatal("done record missing after Complete")
	}
	// Participant 1 heard commit twice — handlers must tolerate that,
	// and here we just confirm the protocol delivered it.
	if len(mocks[0].commits) != 2 {
		t.Fatalf("participant 0 commits = %d", len(mocks[0].commits))
	}
}

type mockSource struct {
	id  ids.GuardianID
	out Outcome
}

func (m *mockSource) GuardianID() ids.GuardianID     { return m.id }
func (m *mockSource) OutcomeOf(ids.ActionID) Outcome { return m.out }

func TestQuery(t *testing.T) {
	net := netsim.New()
	src := &mockSource{id: 1, out: OutcomeCommitted}
	out, err := Query(net, 2, src, aid)
	if err != nil || out != OutcomeCommitted {
		t.Fatalf("query = %v, %v", out, err)
	}
	net.SetDown(1, true)
	if _, err := Query(net, 2, src, aid); err == nil {
		t.Fatal("query to down coordinator succeeded")
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeCommitted.String() != "committed" ||
		OutcomeAborted.String() != "aborted" ||
		OutcomeUnknown.String() != "unknown" {
		t.Fatal("outcome strings wrong")
	}
}
