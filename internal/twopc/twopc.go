// Package twopc implements the standard two-phase commit protocol of
// thesis §2.2, driving the recovery-system operations of §2.3 at the
// coordinator and the participants.
//
// The protocol follows the thesis exactly:
//
//	Coordinator            Participant
//	-----------            -----------
//	prepare(A) ─────────▶  write data entries; force prepared; reply
//	           ◀─────────  prepared | aborted
//	force committing(A)    (the point of no return, §2.2.3)
//	commit(A)  ─────────▶  force committed; reply committed
//	force done(A)
//
// If any participant replies aborted or is unreachable, the coordinator
// aborts unilaterally and tells the rest to abort. A participant that
// prepared but hears nothing can query the coordinator (the action id
// names the coordinator, §2.2.2); the coordinator answers committed iff
// its committing record reached stable storage — otherwise the action
// is presumed aborted.
package twopc

import (
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Vote is a participant's reply to a prepare message.
type Vote uint8

const (
	// VotePrepared means the participant wrote its prepared record.
	VotePrepared Vote = iota + 1
	// VoteAborted means the action is unknown or aborted locally.
	VoteAborted
	// VoteReadOnly means the participant made no modifications on the
	// action's behalf: it releases its read locks, writes nothing, and
	// drops out of phase two (the classic read-only optimization — no
	// outcome can affect it).
	VoteReadOnly
)

// Outcome is the final fate of a top-level action.
type Outcome uint8

const (
	// OutcomeUnknown: the protocol has not resolved (e.g. coordinator
	// crashed while committing and has not finished phase two).
	OutcomeUnknown Outcome = iota
	// OutcomeCommitted: the committing record is on stable storage.
	OutcomeCommitted
	// OutcomeAborted: the action aborted (or was presumed aborted).
	OutcomeAborted
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Participant is a guardian's participant-side interface (§2.2.2). The
// methods are invoked through the network; each corresponds to a
// message arrival.
type Participant interface {
	// GuardianID identifies the participant.
	GuardianID() ids.GuardianID
	// HandlePrepare processes a prepare message: write data entries and
	// the prepared record, or vote aborted.
	HandlePrepare(aid ids.ActionID) (Vote, error)
	// HandleCommit processes a commit message: force the committed
	// record and install the action's versions.
	HandleCommit(aid ids.ActionID) error
	// HandleAbort processes an abort message.
	HandleAbort(aid ids.ActionID) error
}

// CoordinatorLog is the coordinator's stable-storage interface: the
// committing and done records of §2.2.1.
type CoordinatorLog interface {
	Committing(aid ids.ActionID, gids []ids.GuardianID) error
	Done(aid ids.ActionID) error
}

// Coordinator runs two-phase commits from one guardian.
type Coordinator struct {
	Self ids.GuardianID
	// Net delivers the protocol's messages: the deterministic simulated
	// network (netsim.Network) for the crash sweeps and partition
	// matrices, or the TCP transport (client.Transport) when serving
	// real traffic. The protocol is identical over either.
	Net transport.Transport
	Log CoordinatorLog
	// Tracer, when non-nil, receives the protocol's message-level
	// events: twopc.prepare per prepare sent, twopc.vote per reply (or
	// failed call), twopc.outcome at the commit/abort decision point.
	Tracer obs.Tracer
}

func (c *Coordinator) emit(e obs.Event) {
	if c.Tracer != nil {
		c.Tracer.Emit(e)
	}
}

func voteCode(v Vote) uint8 {
	switch v {
	case VotePrepared:
		return obs.VotePrepared
	case VoteReadOnly:
		return obs.VoteReadOnly
	default:
		return obs.VoteAborted
	}
}

// ErrAborted is returned by Run when the action aborted.
var ErrAborted = errors.New("twopc: action aborted")

// Result reports how a run ended.
type Result struct {
	Outcome Outcome
	// Done reports whether phase two completed (every participant
	// acknowledged the commit and the done record was written). When
	// false with OutcomeCommitted, Complete must be re-driven later.
	Done bool
	// Unresponsive lists participants that did not acknowledge commit.
	Unresponsive []ids.GuardianID
}

// Run executes two-phase commit for aid over the given participants
// (§2.2.1). The coordinator is normally also a participant and appears
// in the list.
func (c *Coordinator) Run(aid ids.ActionID, participants []Participant) (Result, error) {
	// Preparing phase: send prepare to all participants and collect
	// votes. Read-only voters drop out of phase two.
	prepared := make([]Participant, 0, len(participants))
	abort := false
	for _, p := range participants {
		c.emit(obs.Event{Kind: obs.KindTwoPCPrepare, AID: aid, From: uint64(c.Self), To: uint64(p.GuardianID())})
		var vote Vote
		err := c.Net.Call(c.Self, p.GuardianID(), func() error {
			v, err := p.HandlePrepare(aid)
			vote = v
			return err
		})
		if err != nil {
			c.emit(obs.Event{Kind: obs.KindTwoPCVote, AID: aid, From: uint64(p.GuardianID()), To: uint64(c.Self), Note: err.Error()})
		} else {
			c.emit(obs.Event{Kind: obs.KindTwoPCVote, AID: aid, From: uint64(p.GuardianID()), To: uint64(c.Self), Code: voteCode(vote), OK: true})
		}
		if err != nil || vote == VoteAborted {
			// A crashed or aborting participant: the coordinator aborts
			// unilaterally (§2.2.1).
			abort = true
			break
		}
		if vote == VotePrepared {
			prepared = append(prepared, p)
		}
	}
	if abort {
		c.emit(obs.Event{Kind: obs.KindTwoPCOutcome, AID: aid, From: uint64(c.Self), Code: obs.TwoPCAborted, OK: true})
		c.sendAborts(aid, prepared)
		return Result{Outcome: OutcomeAborted, Done: true}, ErrAborted
	}
	if len(prepared) == 0 {
		// Every participant was read-only: nothing to commit or redo.
		c.emit(obs.Event{Kind: obs.KindTwoPCOutcome, AID: aid, From: uint64(c.Self), Code: obs.TwoPCCommitted, OK: true})
		return Result{Outcome: OutcomeCommitted, Done: true}, nil
	}

	// Committing phase: the committing record is the point of no return.
	// Only the participants with writes appear in it and hear phase two.
	gids := make([]ids.GuardianID, len(prepared))
	for i, p := range prepared {
		gids[i] = p.GuardianID()
	}
	if err := c.Log.Committing(aid, gids); err != nil {
		// Could not reach stable storage: the action never committed.
		c.emit(obs.Event{Kind: obs.KindTwoPCOutcome, AID: aid, From: uint64(c.Self), Code: obs.TwoPCAborted, OK: true})
		c.sendAborts(aid, prepared)
		return Result{Outcome: OutcomeAborted, Done: true}, fmt.Errorf("twopc: committing record: %w", err)
	}
	c.emit(obs.Event{Kind: obs.KindTwoPCOutcome, AID: aid, From: uint64(c.Self), Code: obs.TwoPCCommitted, OK: true})
	return c.complete(aid, prepared)
}

// Complete re-drives phase two for an action whose committing record is
// already on the log — used after the coordinator recovers from a crash
// with a CT entry in the committing state (§2.2.3).
func (c *Coordinator) Complete(aid ids.ActionID, participants []Participant) (Result, error) {
	return c.complete(aid, participants)
}

func (c *Coordinator) complete(aid ids.ActionID, participants []Participant) (Result, error) {
	res := Result{Outcome: OutcomeCommitted}
	for _, p := range participants {
		err := c.Net.Call(c.Self, p.GuardianID(), func() error {
			return p.HandleCommit(aid)
		})
		if err != nil {
			res.Unresponsive = append(res.Unresponsive, p.GuardianID())
		}
	}
	if len(res.Unresponsive) > 0 {
		// The coordinator must wait for the stragglers; the done record
		// is not written and the CT keeps the action committing.
		return res, nil
	}
	if err := c.Log.Done(aid); err != nil {
		return res, err
	}
	res.Done = true
	return res, nil
}

func (c *Coordinator) sendAborts(aid ids.ActionID, prepared []Participant) {
	for _, p := range prepared {
		// Best effort: a participant that cannot be reached will query
		// the coordinator later and learn the abort.
		//roslint:besteffort abort notifications are advisory; an unreached participant learns the verdict by querying the coordinator (§2.2.3)
		_ = c.Net.Call(c.Self, p.GuardianID(), func() error {
			return p.HandleAbort(aid)
		})
	}
}

// OutcomeSource answers participants' queries about an action's fate:
// the coordinator's side of the §2.2.2 completion-phase query.
type OutcomeSource interface {
	GuardianID() ids.GuardianID
	// OutcomeOf reports the fate of an action this guardian
	// coordinated: committed iff a committing (or done) record is on
	// stable storage; otherwise aborted (presumed abort, §2.2.3).
	OutcomeOf(aid ids.ActionID) Outcome
}

// Query asks an action's coordinator for its outcome on behalf of a
// prepared participant (§2.2.2: "if a participant has not heard from
// its coordinator it can query the coordinator").
func Query(net transport.Transport, from ids.GuardianID, coord OutcomeSource, aid ids.ActionID) (Outcome, error) {
	var out Outcome
	err := net.Call(from, coord.GuardianID(), func() error {
		out = coord.OutcomeOf(aid)
		return nil
	})
	if err != nil {
		return OutcomeUnknown, err
	}
	return out, nil
}
