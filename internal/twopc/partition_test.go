package twopc

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// hookLog is a mockLog that runs a hook when the committing record is
// written — the only coordinator-local step between the two phases, so
// it is where a test injects "the network changed after every vote was
// gathered".
type hookLog struct {
	mockLog
	atCommitting func()
}

func (h *hookLog) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	if h.atCommitting != nil {
		h.atCommitting()
	}
	return h.mockLog.Committing(aid, gids)
}

// sig renders one protocol event as a compact signature line, so a test
// can assert the exact message sequence without depending on the full
// trace text format.
func sig(e obs.Event) string {
	voteName := map[uint8]string{
		obs.VotePrepared: "prepared",
		obs.VoteAborted:  "aborted",
		obs.VoteReadOnly: "read-only",
	}
	outcomeName := map[uint8]string{
		obs.TwoPCCommitted: "committed",
		obs.TwoPCAborted:   "aborted",
	}
	switch e.Kind {
	case obs.KindNetCall:
		if e.OK {
			return fmt.Sprintf("call %d->%d", e.From, e.To)
		}
		return fmt.Sprintf("call %d->%d refused", e.From, e.To)
	case obs.KindTwoPCPrepare:
		return fmt.Sprintf("prepare %d->%d", e.From, e.To)
	case obs.KindTwoPCVote:
		if !e.OK {
			return fmt.Sprintf("vote %d->%d lost", e.From, e.To)
		}
		return fmt.Sprintf("vote %d->%d %s", e.From, e.To, voteName[e.Code])
	case obs.KindTwoPCOutcome:
		return fmt.Sprintf("outcome %s", outcomeName[e.Code])
	default:
		return fmt.Sprintf("unexpected %v", e.Kind)
	}
}

func sigs(rec *obs.Recorder) []string {
	events := rec.Events()
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = sig(e)
	}
	return out
}

func assertSeq(t *testing.T, rec *obs.Recorder, want []string) {
	t.Helper()
	got := sigs(rec)
	n := len(got)
	if len(want) > n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		var g, w string
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Fatalf("message %d = %q, want %q\nfull sequence: %q", i, g, w, got)
		}
	}
}

// partitionFixture wires a coordinator (guardian 1) and two prepared
// participants (guardians 2 and 3) to one network and one recorder that
// sees both the protocol events and the per-message net.call events.
func partitionFixture() (*Coordinator, *hookLog, []*mockPart, []Participant, *obs.Recorder) {
	clog := &hookLog{}
	rec := &obs.Recorder{}
	net := netsim.New()
	net.SetTracer(rec)
	c := &Coordinator{Self: 1, Net: net, Log: clog, Tracer: rec}
	mocks := []*mockPart{
		{id: 2, vote: VotePrepared},
		{id: 3, vote: VotePrepared},
	}
	return c, clog, mocks, []Participant{mocks[0], mocks[1]}, rec
}

// The coordinator's node is down before phase one: its very first
// prepare is refused by the network, the vote is recorded lost, and the
// action aborts with no committing record and no abort messages (no one
// prepared).
func TestPartitionCoordinatorDownPrePrepare(t *testing.T) {
	c, clog, mocks, parts, rec := partitionFixture()
	simnet(c).SetDown(1, true)
	_, err := c.Run(aid, parts)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2 refused",
		"vote 2->1 lost",
		"outcome aborted",
	})
	if len(clog.committing) != 0 {
		t.Fatal("committing record written by a down coordinator")
	}
	if len(mocks[0].prepares)+len(mocks[1].prepares) != 0 {
		t.Fatal("a prepare was delivered through a down coordinator")
	}
}

// The coordinator's node goes down after every vote is in but the
// committing record is written: the action is committed, both commit
// messages are refused, and the coordinator must re-drive phase two
// after restart — the §2.2.3 "committing but not done" state.
func TestPartitionCoordinatorDownPostPrepare(t *testing.T) {
	c, clog, mocks, parts, rec := partitionFixture()
	clog.atCommitting = func() { simnet(c).SetDown(1, true) }
	res, err := c.Run(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCommitted || res.Done {
		t.Fatalf("result = %+v, want committed and not done", res)
	}
	if len(res.Unresponsive) != 2 {
		t.Fatalf("unresponsive = %v, want both participants", res.Unresponsive)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2",
		"vote 2->1 prepared",
		"prepare 1->3",
		"call 1->3",
		"vote 3->1 prepared",
		"outcome committed",
		"call 1->2 refused",
		"call 1->3 refused",
	})
	if len(clog.done) != 0 {
		t.Fatal("done record written with both participants unreached")
	}
	// The coordinator restarts; Complete re-drives phase two to the end.
	simnet(c).SetDown(1, false)
	rec.Reset()
	res2, err := c.Complete(aid, parts)
	if err != nil || !res2.Done {
		t.Fatalf("complete = %+v, %v", res2, err)
	}
	assertSeq(t, rec, []string{"call 1->2", "call 1->3"})
	if len(mocks[0].commits) != 1 || len(mocks[1].commits) != 1 {
		t.Fatalf("commits = %d, %d after re-drive", len(mocks[0].commits), len(mocks[1].commits))
	}
	if len(clog.done) != 1 {
		t.Fatal("done record missing after re-drive")
	}
}

// A participant's node is down: its prepare is refused, the coordinator
// aborts unilaterally, and the participant that did prepare hears the
// abort.
func TestPartitionParticipantDown(t *testing.T) {
	c, clog, mocks, parts, rec := partitionFixture()
	simnet(c).SetDown(3, true)
	_, err := c.Run(aid, parts)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2",
		"vote 2->1 prepared",
		"prepare 1->3",
		"call 1->3 refused",
		"vote 3->1 lost",
		"outcome aborted",
		"call 1->2", // abort notification to the prepared participant
	})
	if len(clog.committing) != 0 {
		t.Fatal("committing record written despite a down participant")
	}
	if len(mocks[0].aborts) != 1 {
		t.Fatalf("prepared participant aborts = %d, want 1", len(mocks[0].aborts))
	}
	if len(mocks[1].prepares)+len(mocks[1].aborts)+len(mocks[1].commits) != 0 {
		t.Fatalf("down participant handled messages: %+v", mocks[1])
	}
}

// The coordinator–participant link is cut before phase one: the prepare
// is refused exactly as if the participant were down, and the action
// aborts before any other guardian is contacted.
func TestPartitionLinkCutPrePrepare(t *testing.T) {
	c, clog, mocks, parts, rec := partitionFixture()
	simnet(c).Cut(1, 2, true)
	_, err := c.Run(aid, parts)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2 refused",
		"vote 2->1 lost",
		"outcome aborted",
	})
	if len(clog.committing) != 0 {
		t.Fatal("committing record written across a cut link")
	}
	if len(mocks[1].prepares) != 0 {
		t.Fatal("second participant contacted after the abort decision")
	}
}

// The link is cut in the other protocol direction — after the votes,
// before the commits: the cut-off participant misses phase two and is
// reported unresponsive while the reachable one commits; healing the
// link and re-driving completes the action.
func TestPartitionLinkCutPostPrepare(t *testing.T) {
	c, clog, mocks, parts, rec := partitionFixture()
	clog.atCommitting = func() { simnet(c).Cut(1, 2, true) }
	res, err := c.Run(aid, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCommitted || res.Done {
		t.Fatalf("result = %+v, want committed and not done", res)
	}
	if len(res.Unresponsive) != 1 || res.Unresponsive[0] != 2 {
		t.Fatalf("unresponsive = %v, want [2]", res.Unresponsive)
	}
	assertSeq(t, rec, []string{
		"prepare 1->2",
		"call 1->2",
		"vote 2->1 prepared",
		"prepare 1->3",
		"call 1->3",
		"vote 3->1 prepared",
		"outcome committed",
		"call 1->2 refused",
		"call 1->3",
	})
	if len(mocks[1].commits) != 1 {
		t.Fatal("reachable participant did not commit")
	}
	if len(mocks[0].commits) != 0 {
		t.Fatal("cut-off participant committed")
	}
	// The partition heals; re-driving phase two reaches the straggler.
	simnet(c).Cut(1, 2, false)
	rec.Reset()
	res2, err := c.Complete(aid, parts)
	if err != nil || !res2.Done {
		t.Fatalf("complete = %+v, %v", res2, err)
	}
	assertSeq(t, rec, []string{"call 1->2", "call 1->3"})
	if len(mocks[0].commits) != 1 {
		t.Fatal("straggler still missing its commit after the link healed")
	}
	if len(clog.done) != 1 {
		t.Fatal("done record missing after completion")
	}
}
