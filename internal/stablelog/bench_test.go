package stablelog

import (
	"fmt"
	"testing"

	"repro/internal/stable"
)

func benchLog(b *testing.B) *Log {
	b.Helper()
	da := stable.NewMemDevice(512, nil)
	db := stable.NewMemDevice(512, nil)
	store, err := stable.NewStore(da, db)
	if err != nil {
		b.Fatal(err)
	}
	return New(store)
}

// BenchmarkAppendBuffered: write without forcing — the fast path of
// §3.1's write operation.
func BenchmarkAppendBuffered(b *testing.B) {
	for _, size := range []int{32, 512} {
		b.Run(fmt.Sprintf("entry=%dB", size), func(b *testing.B) {
			l := benchLog(b)
			payload := make([]byte, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Write(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForceBatching is the ablation for the force barrier: writing
// k entries then forcing once (the thesis's model — data entries are
// written, only the prepared outcome entry is forced) versus forcing
// every entry. The ratio is the benefit of write/force_write having
// distinct semantics (§3.1).
func BenchmarkForceBatching(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("entriesPerForce=%d", batch), func(b *testing.B) {
			l := benchLog(b)
			payload := make([]byte, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					if _, err := l.Write(payload); err != nil {
						b.Fatal(err)
					}
				}
				if err := l.Force(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batch)/float64(b.Elapsed().Seconds()+1e-12), "entries/s")
		})
	}
}

// BenchmarkReadBackward measures the backward scan that dominates
// simple-log recovery.
func BenchmarkReadBackward(b *testing.B) {
	l := benchLog(b)
	for i := 0; i < 1000; i++ {
		l.Write(make([]byte, 64))
	}
	l.Force()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := l.ReadBackward(l.Top(), func(LSN, []byte) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if n != 1000 {
			b.Fatalf("scanned %d", n)
		}
	}
}

// BenchmarkRandomRead measures addressed reads (the hybrid log's data
// fetches).
func BenchmarkRandomRead(b *testing.B) {
	l := benchLog(b)
	var lsns []LSN
	for i := 0; i < 1000; i++ {
		lsn, _ := l.Write(make([]byte, 64))
		lsns = append(lsns, lsn)
	}
	l.Force()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Read(lsns[(i*7919)%len(lsns)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenAfterCrash measures the O(1) open enabled by the
// superblock (vs the O(log) forward scan it replaced).
func BenchmarkOpenAfterCrash(b *testing.B) {
	da := stable.NewMemDevice(512, nil)
	db := stable.NewMemDevice(512, nil)
	store, _ := stable.NewStore(da, db)
	l := New(store)
	for i := 0; i < 5000; i++ {
		l.Write(make([]byte, 64))
	}
	l.Force()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(store); err != nil {
			b.Fatal(err)
		}
	}
}
