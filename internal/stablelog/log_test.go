package stablelog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stable"
)

func freshLog(t testing.TB, blockSize int) (*Log, *stable.MemDevice, *stable.MemDevice) {
	t.Helper()
	a := stable.NewMemDevice(blockSize, nil)
	b := stable.NewMemDevice(blockSize, nil)
	store, err := stable.NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return New(store), a, b
}

func reopen(t *testing.T, a, b *stable.MemDevice) *Log {
	t.Helper()
	a.Restart(nil)
	b.Restart(nil)
	store, err := stable.NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Recover(); err != nil {
		t.Fatal(err)
	}
	l, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Write bounds payloads at MaxEntry: an unbounded entry could become
// locally durable yet never fit a single replication append, wedging
// every later quorum wait (see the MaxEntry comment).
func TestWriteRefusesOversizeEntry(t *testing.T) {
	l, _, _ := freshLog(t, 4096)
	if _, err := l.Write(make([]byte, MaxEntry+1)); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("Write(MaxEntry+1) err = %v, want ErrEntryTooLarge", err)
	}
	if _, err := l.ForceWrite(make([]byte, MaxEntry+1)); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("ForceWrite(MaxEntry+1) err = %v, want ErrEntryTooLarge", err)
	}
	if n := l.Entries(); n != 0 {
		t.Fatalf("refused writes left %d entries", n)
	}
	lsn, err := l.ForceWrite(make([]byte, MaxEntry))
	if err != nil {
		t.Fatalf("ForceWrite(MaxEntry) = %v", err)
	}
	got, err := l.Read(lsn)
	if err != nil || len(got) != MaxEntry {
		t.Fatalf("Read(max entry) = %d bytes, %v", len(got), err)
	}
}

func TestWriteForceRead(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	lsn1, err := l.Write([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.ForceWrite([]byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn1 == lsn2 {
		t.Fatal("distinct entries share an LSN")
	}
	for _, tc := range []struct {
		lsn  LSN
		want string
	}{{lsn1, "first"}, {lsn2, "second"}} {
		got, err := l.Read(tc.lsn)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Errorf("Read(%v) = %q, want %q", tc.lsn, got, tc.want)
		}
	}
	if l.Top() != lsn2 {
		t.Errorf("Top = %v, want %v", l.Top(), lsn2)
	}
}

func TestReadUnforcedEntry(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	lsn, err := l.Write([]byte("buffered"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.Read(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "buffered" {
		t.Fatalf("Read buffered = %q", got)
	}
	// Top must not include it until forced.
	if l.Top() != NoLSN {
		t.Fatalf("Top = %v before any force, want NoLSN", l.Top())
	}
}

func TestReadBadAddress(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	if _, err := l.Read(NoLSN); err == nil {
		t.Error("Read(NoLSN) succeeded")
	}
	lsn, _ := l.ForceWrite([]byte("abcdef"))
	if _, err := l.Read(lsn + 2); err == nil {
		t.Error("Read at mid-frame address succeeded")
	}
	if _, err := l.Read(LSN(10_000)); err == nil {
		t.Error("Read past end succeeded")
	}
}

func TestReadBackwardOrder(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Write([]byte(fmt.Sprintf("e%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	var got []string
	err := l.ReadBackward(l.Top(), func(_ LSN, p []byte) bool {
		got = append(got, string(p))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("backward read returned %d entries, want %d", len(got), n)
	}
	for i, s := range got {
		if want := fmt.Sprintf("e%02d", n-1-i); s != want {
			t.Fatalf("backward[%d] = %q, want %q", i, s, want)
		}
	}
}

func TestReadBackwardEarlyStop(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	for i := 0; i < 10; i++ {
		l.Write([]byte{byte(i)})
	}
	l.Force()
	count := 0
	l.ReadBackward(l.Top(), func(LSN, []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d entries, want 3", count)
	}
}

func TestEntriesSpanPages(t *testing.T) {
	l, _, _ := freshLog(t, 64) // small pages force spanning
	big := bytes.Repeat([]byte("x"), 300)
	lsn, err := l.ForceWrite(big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.Read(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("multi-page entry corrupted")
	}
}

func TestReopenAfterCleanShutdown(t *testing.T) {
	l, a, b := freshLog(t, 128)
	var lsns []LSN
	for i := 0; i < 30; i++ {
		lsn, err := l.Write([]byte(fmt.Sprintf("entry-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	l2 := reopen(t, a, b)
	if l2.Top() != lsns[len(lsns)-1] {
		t.Fatalf("reopened Top = %v, want %v", l2.Top(), lsns[len(lsns)-1])
	}
	for i, lsn := range lsns {
		got, err := l2.Read(lsn)
		if err != nil {
			t.Fatalf("Read(%v): %v", lsn, err)
		}
		if want := fmt.Sprintf("entry-%d", i); string(got) != want {
			t.Fatalf("entry %d = %q, want %q", i, got, want)
		}
	}
}

func TestCrashLosesUnforcedEntries(t *testing.T) {
	l, a, b := freshLog(t, 128)
	forced, err := l.ForceWrite([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	a.Crash()
	b.Crash()
	l2 := reopen(t, a, b)
	if l2.Top() != forced {
		t.Fatalf("after crash Top = %v, want %v (unforced entry must vanish)", l2.Top(), forced)
	}
	if l2.Entries() != 1 {
		t.Fatalf("after crash Entries = %d, want 1", l2.Entries())
	}
}

func TestAppendAfterRecovery(t *testing.T) {
	l, a, b := freshLog(t, 128)
	l.ForceWrite([]byte("one"))
	l.Write([]byte("lost"))
	a.Crash()
	b.Crash()
	l2 := reopen(t, a, b)
	lsn, err := l2.ForceWrite([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := l2.Read(lsn)
	if err != nil || string(got) != "two" {
		t.Fatalf("post-recovery append: %q, %v", got, err)
	}
	// And it all survives another crash.
	a.Crash()
	b.Crash()
	l3 := reopen(t, a, b)
	var all []string
	l3.ReadBackward(l3.Top(), func(_ LSN, p []byte) bool {
		all = append(all, string(p))
		return true
	})
	if len(all) != 2 || all[0] != "two" || all[1] != "one" {
		t.Fatalf("log after second crash = %v, want [two one]", all)
	}
}

func TestCrashDuringForceKeepsPrefix(t *testing.T) {
	// Crash on the kth device write during a multi-page force; the log
	// must recover to a consistent prefix that includes everything
	// previously forced.
	for k := 1; k <= 6; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-write-%d", k), func(t *testing.T) {
			a := stable.NewMemDevice(64, nil)
			b := stable.NewMemDevice(64, nil)
			store, err := stable.NewStore(a, b)
			if err != nil {
				t.Fatal(err)
			}
			l := New(store)
			if _, err := l.ForceWrite([]byte("committed-prefix")); err != nil {
				t.Fatal(err)
			}
			prefixTop := l.Top()
			// Arm crash across both devices' write streams.
			n := 0
			plan := stable.FaultFunc(func(int) stable.Fault {
				n++
				if n == k {
					return stable.FaultCrash
				}
				return stable.FaultNone
			})
			a.Restart(plan)
			for i := 0; i < 4; i++ {
				l.Write(bytes.Repeat([]byte{byte('A' + i)}, 50))
			}
			_ = l.Force() // may fail with ErrCrashed
			a.Crash()
			b.Crash()
			l2 := reopen(t, a, b)
			// The previously forced entry must still be there.
			got, err := l2.Read(prefixTop)
			if err != nil || string(got) != "committed-prefix" {
				t.Fatalf("forced prefix lost: %q, %v", got, err)
			}
			// Whatever survived must be a valid chain ending at Top.
			seen := 0
			if l2.Top() != NoLSN {
				err = l2.ReadBackward(l2.Top(), func(LSN, []byte) bool {
					seen++
					return true
				})
				if err != nil {
					t.Fatalf("backward chain broken after crash: %v", err)
				}
			}
			if seen < 1 || seen > 5 {
				t.Fatalf("recovered %d entries, want between 1 and 5", seen)
			}
		})
	}
}

func TestPrevWalk(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	var lsns []LSN
	for i := 0; i < 5; i++ {
		lsn, _ := l.Write([]byte{byte(i)})
		lsns = append(lsns, lsn)
	}
	l.Force()
	cur := lsns[4]
	for i := 4; i >= 1; i-- {
		prev, err := l.Prev(cur)
		if err != nil {
			t.Fatal(err)
		}
		if prev != lsns[i-1] {
			t.Fatalf("Prev(%v) = %v, want %v", cur, prev, lsns[i-1])
		}
		cur = prev
	}
	prev, err := l.Prev(cur)
	if err != nil {
		t.Fatal(err)
	}
	if prev != NoLSN {
		t.Fatalf("Prev(first) = %v, want NoLSN", prev)
	}
}

// Property: for any sequence of entry payloads, writing + forcing +
// reopening yields exactly the same sequence, in order.
func TestRoundTripProperty(t *testing.T) {
	f := func(entries [][]byte) bool {
		if len(entries) > 40 {
			entries = entries[:40]
		}
		a := stable.NewMemDevice(96, nil)
		b := stable.NewMemDevice(96, nil)
		store, _ := stable.NewStore(a, b)
		l := New(store)
		var lsns []LSN
		for _, e := range entries {
			if len(e) > 500 {
				e = e[:500]
			}
			lsn, err := l.Write(e)
			if err != nil {
				return false
			}
			lsns = append(lsns, lsn)
		}
		if err := l.Force(); err != nil {
			return false
		}
		a.Crash()
		b.Crash()
		a.Restart(nil)
		b.Restart(nil)
		store2, _ := stable.NewStore(a, b)
		if err := store2.Recover(); err != nil {
			return false
		}
		l2, err := Open(store2)
		if err != nil {
			return false
		}
		for i, lsn := range lsns {
			got, err := l2.Read(lsn)
			if err != nil {
				return false
			}
			want := entries[i]
			if len(want) > 500 {
				want = want[:500]
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return l2.Entries() == len(entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: recovery is idempotent — opening twice yields the same state.
func TestRecoveryIdempotent(t *testing.T) {
	l, a, b := freshLog(t, 128)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		p := make([]byte, rng.Intn(100))
		rng.Read(p)
		l.Write(p)
	}
	l.Force()
	l1 := reopen(t, a, b)
	l2 := reopen(t, a, b)
	if l1.Top() != l2.Top() || l1.Entries() != l2.Entries() || l1.Size() != l2.Size() {
		t.Fatalf("recovery not idempotent: (%v,%d,%d) vs (%v,%d,%d)",
			l1.Top(), l1.Entries(), l1.Size(), l2.Top(), l2.Entries(), l2.Size())
	}
}

func TestForceCountsAndEmptyForce(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if l.Forces() != 0 {
		t.Fatalf("empty force counted: %d", l.Forces())
	}
	l.Write([]byte("x"))
	l.Force()
	if l.Forces() != 1 {
		t.Fatalf("Forces = %d, want 1", l.Forces())
	}
}

func TestSiteSwitch(t *testing.T) {
	vol := NewMemVolume(128)
	site, err := CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	site.Log().ForceWrite([]byte("old-log-entry"))
	newLog, gen, err := site.NewLog()
	if err != nil {
		t.Fatal(err)
	}
	newLog.ForceWrite([]byte("new-log-entry"))
	if err := site.Switch(newLog, gen); err != nil {
		t.Fatal(err)
	}
	if site.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", site.Generation())
	}
	// After a crash, OpenSite must find the new log, not the old.
	vol.Crash()
	vol.Restart()
	site2, err := OpenSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	got, err := site2.Log().Read(site2.Log().Top())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new-log-entry" {
		t.Fatalf("after switch+crash, top entry = %q", got)
	}
}

func TestSiteCrashBeforeSwitchKeepsOldLog(t *testing.T) {
	vol := NewMemVolume(128)
	site, err := CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	site.Log().ForceWrite([]byte("old"))
	newLog, _, err := site.NewLog()
	if err != nil {
		t.Fatal(err)
	}
	newLog.ForceWrite([]byte("new"))
	// Crash before Switch: the root pointer still names generation 1.
	vol.Crash()
	vol.Restart()
	site2, err := OpenSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	if site2.Generation() != 1 {
		t.Fatalf("generation after aborted switch = %d, want 1", site2.Generation())
	}
	got, _ := site2.Log().Read(site2.Log().Top())
	if string(got) != "old" {
		t.Fatalf("entry = %q, want old", got)
	}
}

func TestSiteSwitchWrongGeneration(t *testing.T) {
	vol := NewMemVolume(128)
	site, _ := CreateSite(vol)
	newLog, gen, _ := site.NewLog()
	if err := site.Switch(newLog, gen+1); err == nil {
		t.Fatal("switch to non-successor generation accepted")
	}
}

func TestSiteDestroy(t *testing.T) {
	vol := NewMemVolume(128)
	site, err := CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	site.Log().ForceWrite([]byte("doomed"))
	if err := site.Destroy(); err != nil {
		t.Fatal(err)
	}
	// Reopening finds no log.
	if _, err := OpenSite(vol); err == nil {
		t.Fatal("destroyed site reopened")
	}
}
