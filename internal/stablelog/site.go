package stablelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stable"
)

// ErrNoSite is returned by OpenSite when the volume's root generation
// pointer is empty: no site was ever durably created here (or it was
// destroyed). A crash between allocating a volume and CreateSite's root
// write lands in this state; callers treat it as "start from scratch",
// not as corruption.
var ErrNoSite = errors.New("stablelog: no site on volume")

// Volume supplies the stable stores backing one guardian's logs. A
// volume outlives crashes: after a node crash the same volume is handed
// to OpenSite, which repairs and reopens the current log generation.
type Volume interface {
	// Root returns the small store holding the current-generation
	// pointer. It is created on first use.
	Root() (*stable.Store, error)
	// Generation returns (creating if needed) the store for log
	// generation gen.
	Generation(gen uint64) (*stable.Store, error)
	// Remove discards the devices of generation gen.
	Remove(gen uint64)
}

// MemVolume is an in-memory Volume with whole-node crash injection. All
// devices of the volume crash and restart together, as they would on a
// single node.
type MemVolume struct {
	mu        sync.Mutex
	blockSize int
	root      [2]*stable.MemDevice
	rootStore *stable.Store
	gens      map[uint64][2]*stable.MemDevice
	genStores map[uint64]*stable.Store
	crashed   bool
	plan      stable.FaultPlan // applied to device A of every generation
	global    *globalPlan      // volume-wide write counter / crash trigger
	delay     time.Duration    // write latency applied to every device
	tr        obs.Tracer       // fault-event tracer applied to every device
}

// globalPlan is a FaultPlan shared by every device of a volume: it
// counts block writes across the whole node (root pair plus both copies
// of every generation) and crashes the node at an armed write number.
// With crashAt 0 it only counts, which is how a sweep measures the
// total write count of a scripted history before replaying it.
type globalPlan struct {
	mu      sync.Mutex
	writes  int
	crashAt int
	fired   bool
}

func (g *globalPlan) Next(int) stable.Fault {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.writes++
	if g.crashAt > 0 && g.writes >= g.crashAt {
		g.fired = true
		return stable.FaultCrash
	}
	return stable.FaultNone
}

func (g *globalPlan) snapshot() (writes int, fired bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.writes, g.fired
}

// NewMemVolume returns an empty volume whose devices use the given block
// size.
func NewMemVolume(blockSize int) *MemVolume {
	return &MemVolume{
		blockSize: blockSize,
		gens:      make(map[uint64][2]*stable.MemDevice),
		genStores: make(map[uint64]*stable.Store),
	}
}

// BlockSize reports the block size the volume's devices use.
func (v *MemVolume) BlockSize() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.blockSize
}

// SetFaultPlan installs a fault plan applied to the primary device of
// every generation created afterwards.
func (v *MemVolume) SetFaultPlan(p stable.FaultPlan) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.plan = p
}

// SetWriteDelay applies a simulated per-block-write latency to every
// device of the volume, existing and future (see
// stable.MemDevice.SetWriteDelay). Benchmarks use it to model the disk
// forces the thesis costs out; the crash harnesses leave it zero.
func (v *MemVolume) SetWriteDelay(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.delay = d
	for i := range v.root {
		if v.root[i] != nil {
			v.root[i].SetWriteDelay(d)
		}
	}
	//roslint:nondet applies one setting to every device; order has no observable effect
	for _, pair := range v.gens {
		pair[0].SetWriteDelay(d)
		pair[1].SetWriteDelay(d)
	}
}

// SetTracer installs an event tracer on every device of the volume,
// existing and future; devices emit fault.injected events when an
// injected fault (torn write, crash, read decay) takes effect.
func (v *MemVolume) SetTracer(tr obs.Tracer) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tr = tr
	for i := range v.root {
		if v.root[i] != nil {
			v.root[i].SetTracer(tr)
		}
	}
	//roslint:nondet applies one setting to every device; order has no observable effect
	for _, pair := range v.gens {
		pair[0].SetTracer(tr)
		pair[1].SetTracer(tr)
	}
}

// Root implements Volume. The same Store instance is returned on every
// call: concurrent Store wrappers over one device pair would race on
// version stamps.
func (v *MemVolume) Root() (*stable.Store, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.root[0] == nil {
		v.root[0] = stable.NewMemDevice(v.blockSize, nil)
		v.root[1] = stable.NewMemDevice(v.blockSize, nil)
		if v.global != nil {
			v.root[0].SetPlan(v.global)
			v.root[1].SetPlan(v.global)
		}
		v.root[0].SetWriteDelay(v.delay)
		v.root[1].SetWriteDelay(v.delay)
		v.root[0].SetTracer(v.tr)
		v.root[1].SetTracer(v.tr)
	}
	if v.rootStore == nil {
		s, err := stable.NewStore(v.root[0], v.root[1])
		if err != nil {
			return nil, err
		}
		v.rootStore = s
	}
	return v.rootStore, nil
}

// Generation implements Volume, caching the Store per generation.
func (v *MemVolume) Generation(gen uint64) (*stable.Store, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.genStores[gen]; ok {
		return s, nil
	}
	pair, ok := v.gens[gen]
	if !ok {
		pair = [2]*stable.MemDevice{
			stable.NewMemDevice(v.blockSize, v.plan),
			stable.NewMemDevice(v.blockSize, nil),
		}
		if v.global != nil {
			pair[0].SetPlan(v.global)
			pair[1].SetPlan(v.global)
		}
		pair[0].SetWriteDelay(v.delay)
		pair[1].SetWriteDelay(v.delay)
		pair[0].SetTracer(v.tr)
		pair[1].SetTracer(v.tr)
		v.gens[gen] = pair
	}
	s, err := stable.NewStore(pair[0], pair[1])
	if err != nil {
		return nil, err
	}
	v.genStores[gen] = s
	return s, nil
}

// Remove implements Volume.
func (v *MemVolume) Remove(gen uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.gens, gen)
	delete(v.genStores, gen)
}

// ArmCrashAfterWrites installs a fault plan on the primary device of
// every existing generation that crashes the whole node on the nth
// subsequent block write (counting across all generations). Used by the
// crash-injection harness to stop a guardian at an arbitrary point
// inside a prepare or commit.
func (v *MemVolume) ArmCrashAfterWrites(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	count := 0
	var mu sync.Mutex
	shared := stable.FaultFunc(func(int) stable.Fault {
		mu.Lock()
		defer mu.Unlock()
		if n <= 0 {
			return stable.FaultNone
		}
		count++
		if count == n {
			// The device crash propagates an ErrCrashed to the caller,
			// which the harness turns into a full node crash.
			return stable.FaultCrash
		}
		return stable.FaultNone
	})
	//roslint:nondet order-independent: installs the same shared plan on every pair
	for _, pair := range v.gens {
		pair[0].Restart(shared)
	}
	v.plan = shared
}

// ArmGlobalCrashAtWrite installs a node-wide fault plan on every device
// of the volume — the root pair and both copies of every generation,
// existing and created later — that counts block writes and crashes the
// node on write number n (and every write after, so nothing slips out
// between the trigger and the harness noticing). n == 0 arms a pure
// counter: the sweep runs the scripted history once with n == 0 to
// learn the total write count W, then replays it W times crashing at
// each k in 1..W.
func (v *MemVolume) ArmGlobalCrashAtWrite(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.global = &globalPlan{crashAt: n}
	if v.root[0] != nil {
		v.root[0].SetPlan(v.global)
		v.root[1].SetPlan(v.global)
	}
	//roslint:nondet order-independent: installs the same global plan on every pair
	for _, pair := range v.gens {
		pair[0].SetPlan(v.global)
		pair[1].SetPlan(v.global)
	}
}

// GlobalWrites returns the number of device block writes counted by the
// plan installed with ArmGlobalCrashAtWrite (0 if never armed).
func (v *MemVolume) GlobalWrites() int {
	v.mu.Lock()
	g := v.global
	v.mu.Unlock()
	if g == nil {
		return 0
	}
	w, _ := g.snapshot()
	return w
}

// GlobalCrashFired reports whether the armed global crash triggered.
func (v *MemVolume) GlobalCrashFired() bool {
	v.mu.Lock()
	g := v.global
	v.mu.Unlock()
	if g == nil {
		return false
	}
	_, fired := g.snapshot()
	return fired
}

// EachDevicePair calls f for every device pair of the volume in a
// deterministic order (root first, then generations ascending). Fault
// sweeps use it to inject decay on chosen copies between a crash and
// the subsequent recovery.
func (v *MemVolume) EachDevicePair(f func(label string, a, b *stable.MemDevice)) {
	v.mu.Lock()
	root := v.root
	gens := make([]uint64, 0, len(v.gens))
	//roslint:nondet keys collected here are sorted below before use
	for g := range v.gens {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	pairs := make([][2]*stable.MemDevice, len(gens))
	for i, g := range gens {
		pairs[i] = v.gens[g]
	}
	v.mu.Unlock()
	if root[0] != nil {
		f("root", root[0], root[1])
	}
	for i, g := range gens {
		f(fmt.Sprintf("gen%d", g), pairs[i][0], pairs[i][1])
	}
}

// Crash takes every device of the volume down, losing all volatile
// state layered above. Stable contents persist.
func (v *MemVolume) Crash() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.crashed = true
	if v.root[0] != nil {
		v.root[0].Crash()
		v.root[1].Crash()
	}
	//roslint:nondet order-independent: every pair crashes, no cross-pair effects
	for _, pair := range v.gens {
		pair[0].Crash()
		pair[1].Crash()
	}
}

// Restart brings all devices back up (with no fault plans).
func (v *MemVolume) Restart() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.crashed = false
	if v.root[0] != nil {
		v.root[0].Restart(nil)
		v.root[1].Restart(nil)
	}
	//roslint:nondet order-independent: every pair restarts, no cross-pair effects
	for _, pair := range v.gens {
		pair[0].Restart(nil)
		pair[1].Restart(nil)
	}
	v.plan = nil
	v.global = nil
	// Drop cached Store wrappers: a reboot starts from the devices.
	v.rootStore = nil
	v.genStores = make(map[uint64]*stable.Store)
}

// Site is one guardian's stable-log facility: the current log plus the
// machinery to replace it with a new one in a single atomic step
// (thesis ch. 5: "in one atomic step, the new log supplants the old
// log"). The current generation number lives on the volume's root
// store; switching writes one stable page.
type Site struct {
	mu  sync.Mutex
	vol Volume
	gen uint64
	log *Log
	// syncForce pins every log of this site — current and future
	// generations alike — to synchronous forcing (no group-commit
	// coalescing); see Log.SetSynchronousForces. It must survive the
	// housekeeping generation switch, which installs a brand-new Log.
	syncForce bool
	// tr is the event tracer applied to the current log and, at the
	// moment of the housekeeping switch, to its replacement. The
	// not-yet-installed log that housekeeping fills via NewLog is
	// deliberately untraced: only one log per guardian carries the
	// tracer at a time, so the stream's durable boundary is always
	// unambiguous (stage-one copy work is summarized by the
	// housekeep.done event instead).
	tr obs.Tracer
	// repl is the replication hook applied to the current log and, at
	// the switch, to its replacement — like tr, it must survive the
	// housekeeping generation switch, or a primary would silently stop
	// quorum-gating forces after its first housekeeping pass. The log
	// housekeeping fills via NewLog is deliberately unreplicated: its
	// fill forces are local copy work, and the replication cursor
	// resynchronizes from the generation number after the switch.
	repl Replicator
}

// SetReplicator installs the site's replication hook on the current log
// (see Log.SetReplicator) and arranges for the log installed by a
// future housekeeping Switch to inherit it.
func (s *Site) SetReplicator(r Replicator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.repl = r
	if s.log != nil {
		s.log.SetReplicator(r)
	}
}

// SetTracer installs the site's event tracer on the current log (which
// emits a log.open event, see Log.SetTracer) and arranges for the log
// installed by a future housekeeping Switch to inherit it.
func (s *Site) SetTracer(tr obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr = tr
	if s.log != nil {
		s.log.SetTracer(tr)
	}
}

// SetSynchronousForces switches the site's current log (and every log
// later created through NewLog) between group-commit scheduling and
// fully synchronous forces. The crash harness pins its sites to
// synchronous mode for deterministic device-write counting.
func (s *Site) SetSynchronousForces(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncForce = on
	if s.log != nil {
		s.log.SetSynchronousForces(on)
	}
}

// CreateSite initializes a brand-new site with an empty generation-1
// log.
func CreateSite(vol Volume) (*Site, error) {
	root, err := vol.Root()
	if err != nil {
		return nil, err
	}
	store, err := vol.Generation(1)
	if err != nil {
		return nil, err
	}
	s := &Site{vol: vol, gen: 1, log: New(store)}
	if err := writeGen(root, 1); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenSite reopens a site after a crash: repairs the root store, reads
// the current generation pointer, repairs that generation's store, and
// opens the log (discarding any torn tail).
func OpenSite(vol Volume) (*Site, error) {
	root, err := vol.Root()
	if err != nil {
		return nil, err
	}
	if err := root.Recover(); err != nil {
		return nil, err
	}
	gen, err := readGen(root)
	if err != nil {
		return nil, err
	}
	store, err := vol.Generation(gen)
	if err != nil {
		return nil, err
	}
	if err := store.Recover(); err != nil {
		return nil, err
	}
	log, err := Open(store)
	if err != nil {
		return nil, err
	}
	return &Site{vol: vol, gen: gen, log: log}, nil
}

func writeGen(root *stable.Store, gen uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], gen)
	return root.WritePage(0, buf[:])
}

func readGen(root *stable.Store) (uint64, error) {
	p, err := root.ReadPage(0)
	if err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, ErrNoSite
	}
	if len(p) < 8 {
		return 0, fmt.Errorf("stablelog: root page corrupt (len %d)", len(p))
	}
	return binary.LittleEndian.Uint64(p[:8]), nil
}

// Log returns the current log.
func (s *Site) Log() *Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log
}

// Generation returns the current log generation number.
func (s *Site) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// NewLog creates (but does not install) the next-generation log, for
// housekeeping to fill.
func (s *Site) NewLog() (*Log, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.gen + 1
	store, err := s.vol.Generation(gen)
	if err != nil {
		return nil, 0, err
	}
	log := New(store)
	if s.syncForce {
		log.SetSynchronousForces(true)
	}
	return log, gen, nil
}

// Destroy discards the site's log (the §3.1 destroy operation): the
// current generation's devices are removed and the root pointer is
// cleared, as when a guardian is itself destroyed. The site must not be
// used afterwards.
func (s *Site) Destroy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	root, err := s.vol.Root()
	if err != nil {
		return err
	}
	if err := root.WritePage(0, nil); err != nil {
		return err
	}
	s.vol.Remove(s.gen)
	s.log = nil
	return nil
}

// Switch atomically installs the log created by NewLog as the current
// log and discards the old generation. The new log must have been
// forced by the caller; the single atomic step is the root-page write.
func (s *Site) Switch(newLog *Log, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen+1 {
		return fmt.Errorf("stablelog: switch to generation %d, current is %d", gen, s.gen)
	}
	root, err := s.vol.Root()
	if err != nil {
		return err
	}
	if err := writeGen(root, gen); err != nil {
		return err
	}
	old := s.gen
	s.gen = gen
	s.log = newLog
	s.vol.Remove(old)
	if s.repl != nil {
		// Installed before the tracer so the first traced event of the
		// new generation can never be an unreplicated force completion.
		newLog.SetReplicator(s.repl)
	}
	if s.tr != nil {
		// The new generation becomes the traced log from this point on;
		// its log.open event carries the durable boundary housekeeping
		// already forced, resetting the stream's view of the log.
		newLog.SetTracer(s.tr)
	}
	return nil
}
