package stablelog

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/stable"
)

// FuzzReadBackward builds a real log from fuzzer-chosen entries, forces
// an acknowledged prefix, then crashes the node partway through a
// second force — leaving a torn tail — and optionally decays the
// superblock on both devices so reopening goes through the salvage
// scan. Whatever state results, reopening must not panic, the survivors
// must be a prefix of the written sequence that contains at least every
// acknowledged entry byte-identically, and backward iteration must
// agree exactly with forward reads.
func FuzzReadBackward(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2), false)
	f.Add(int64(2), uint8(1), uint8(0), true)
	f.Add(int64(3), uint8(20), uint8(5), true)
	f.Add(int64(4), uint8(12), uint8(9), false)
	f.Add(int64(5), uint8(24), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, crashRaw uint8, loseSuper bool) {
		rng := rand.New(rand.NewSource(seed))
		a := stable.NewMemDevice(128, nil)
		b := stable.NewMemDevice(128, nil)
		store, err := stable.NewStore(a, b)
		if err != nil {
			t.Fatal(err)
		}
		l := New(store)

		n := int(nRaw)%24 + 2
		acked := 1 + rng.Intn(n-1) // entries covered by the clean force
		payloads := make([][]byte, n)
		lsns := make([]LSN, n)
		write := func(i int) {
			p := make([]byte, rng.Intn(60))
			rng.Read(p)
			payloads[i] = p
			lsn, err := l.Write(p)
			if err != nil {
				t.Fatalf("Write(entry %d): %v", i, err)
			}
			lsns[i] = lsn
		}
		for i := 0; i < acked; i++ {
			write(i)
		}
		if err := l.Force(); err != nil {
			t.Fatalf("clean force: %v", err)
		}
		for i := acked; i < n; i++ {
			write(i)
		}

		// The second force crashes the node on its k-th device write
		// (k == 0 lets it finish), tearing the unacknowledged tail at a
		// fuzzer-chosen point.
		k := int(crashRaw) % 12
		a.SetPlan(stable.CrashAfter(k))
		b.SetPlan(stable.CrashAfter(k))
		forceErr := l.Force()

		a.Restart(nil)
		b.Restart(nil)
		if loseSuper {
			// Double superblock decay: Open must fall back to the
			// forward salvage scan over the frame chain.
			a.Decay(superPage)
			b.Decay(superPage)
		}
		store2, err := stable.NewStore(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := store2.Recover(); err != nil {
			t.Fatalf("store recover: %v", err)
		}
		re, err := Open(store2)
		if err != nil {
			t.Fatalf("reopen (forceErr=%v, loseSuper=%v): %v", forceErr, loseSuper, err)
		}

		// The survivors are a prefix: every acknowledged entry, possibly
		// some of the unacknowledged suffix, never an invented frame.
		m := re.Entries()
		if m < acked || m > n {
			t.Fatalf("survivors = %d, want between %d acked and %d written", m, acked, n)
		}
		if forceErr == nil && m != n {
			t.Fatalf("survivors = %d after an acknowledged force of all %d entries", m, n)
		}
		for i := 0; i < m; i++ {
			got, err := re.Read(lsns[i])
			if err != nil {
				t.Fatalf("Read(survivor %d @ %v): %v", i, lsns[i], err)
			}
			if !bytes.Equal(got, payloads[i]) {
				t.Fatalf("survivor %d = %q, want %q", i, got, payloads[i])
			}
		}

		// Backward iteration must yield exactly the survivors, newest
		// first, agreeing with the forward reads above.
		i := m
		err = re.ReadBackward(re.Top(), func(lsn LSN, payload []byte) bool {
			i--
			if i < 0 {
				t.Fatal("ReadBackward yielded more entries than Entries() reported")
			}
			if lsn != lsns[i] || !bytes.Equal(payload, payloads[i]) {
				t.Fatalf("ReadBackward entry %d = (%v, %q), want (%v, %q)",
					i, lsn, payload, lsns[i], payloads[i])
			}
			return true
		})
		if err != nil {
			t.Fatalf("ReadBackward: %v", err)
		}
		if i != 0 {
			t.Fatalf("ReadBackward stopped with %d survivors unseen", i)
		}
	})
}
