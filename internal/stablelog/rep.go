package stablelog

// Replication hooks: the stable log's half of primary/backup log
// shipping (internal/replog).
//
// The key property the replication design rests on is that a frame's
// bytes are a pure function of the payload sequence: Write lays frames
// down contiguously from byte 0, each header carrying the payload
// length, the previous frame's length, and a CRC over both plus the
// payload. A backup that replays the same payloads through its own
// Write therefore produces a byte-identical log with identical LSNs —
// which is exactly what lets a promoted backup run the *existing*
// backward-scan recovery over its received prefix, unchanged.
//
// The primary ships raw frame bytes (ReadRaw) so the receiver can
// revalidate the CRC chain end to end (ParseFrames) before replaying
// the payloads; durability acknowledgments travel as byte offsets,
// which are frame boundaries by construction.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadFrame is returned by ParseFrames and ReadRaw when a byte run
// does not validate as a chain of log frames: bad magic, a broken
// back-chain, a CRC mismatch, or a torn tail. For a replication
// receiver it means the shipped run does not extend its prefix and the
// sender must rewind or offer a snapshot.
var ErrBadFrame = errors.New("stablelog: bad replicated frame")

// Replicator is the quorum-acknowledgment hook a replicating wrapper
// (internal/replog) installs on a primary's log: ForceTo completes
// only after both the local device force and WaitQuorum return.
type Replicator interface {
	// WaitQuorum blocks until a quorum of replicas has durably
	// acknowledged the log prefix covering lsn. The entry at lsn is
	// already durable locally when it is called. An error means the
	// quorum was not reached and the caller must not acknowledge the
	// outcome (the entry may still become replica-durable later — the
	// same ambiguity as a failed device force).
	WaitQuorum(lsn LSN) error
}

// SetReplicator installs (or, with nil, removes) the log's replicator.
func (l *Log) SetReplicator(r Replicator) {
	l.mu.Lock()
	l.rep = r
	l.mu.Unlock()
}

// replicator returns the installed replicator (nil for none).
func (l *Log) replicator() Replicator {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rep
}

// ForceTo blocks until the entry written at lsn is on stable storage —
// and, when a replicator is installed, until a quorum of replicas has
// durably acknowledged the covering prefix. See forceToLocal for the
// device-force half; the quorum wait runs outside every log lock, so
// appends and reads proceed while replication rounds are in flight.
func (l *Log) ForceTo(lsn LSN) error {
	if err := l.forceToLocal(lsn); err != nil {
		return err
	}
	if lsn == NoLSN {
		return nil
	}
	if rep := l.replicator(); rep != nil {
		return rep.WaitQuorum(lsn)
	}
	return nil
}

// TailInfo returns the durable byte boundary and the frame length of
// the last appended entry (0 on an empty log). On a replication
// receiver — which forces after every applied batch — the durable
// boundary is also the append tail, so the pair identifies exactly
// where the next shipped run must start and which back-chain value it
// must carry.
func (l *Log) TailInfo() (durable uint64, lastLen uint32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	last := l.last
	if l.lastLSN == NoLSN {
		last = 0
	}
	return l.durable, last
}

// ReadRaw returns a run of whole raw frames starting at byte offset
// from, at most max bytes long (but always at least one frame, so a
// frame larger than max still ships), never extending past the durable
// boundary — only locally durable bytes are ever shipped. The second
// result is the back-chain value of the first frame (the length of the
// frame preceding it), which the receiver cross-checks against its own
// tail. ErrBadFrame reports that from is not a frame boundary of this
// log — the caller's cursor has diverged (e.g. across a housekeeping
// generation switch) and it must resynchronize.
func (l *Log) ReadRaw(from uint64, max int) ([]byte, uint32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from >= l.durable {
		return nil, 0, fmt.Errorf("%w: offset %d at or beyond durable boundary %d", ErrBadFrame, from, l.durable)
	}
	var prevLen uint32
	end := from
	for end < l.durable {
		hdr, err := l.readAt(end, frameHeaderSize)
		if err != nil {
			return nil, 0, err
		}
		if hdr == nil || hdr[0] != frameMagic {
			return nil, 0, fmt.Errorf("%w: no frame at offset %d", ErrBadFrame, end)
		}
		plen := binary.LittleEndian.Uint32(hdr[1:5])
		if end == from {
			prevLen = binary.LittleEndian.Uint32(hdr[5:9])
		}
		flen := uint64(frameHeaderSize) + uint64(plen)
		if end+flen > l.durable {
			return nil, 0, fmt.Errorf("%w: frame at %d runs past durable boundary %d", ErrBadFrame, end, l.durable)
		}
		if end > from && end+flen-from > uint64(max) {
			break
		}
		end += flen
	}
	b, err := l.readAt(from, int(end-from))
	if err != nil {
		return nil, 0, err
	}
	if b == nil {
		return nil, 0, fmt.Errorf("%w: raw range [%d,%d) unreadable", ErrBadFrame, from, end)
	}
	return b, prevLen, nil
}

// Frame is one parsed replicated log frame: the address its bytes
// occupy, the back-chain value its header carries, and its payload
// (aliasing the parsed buffer).
type Frame struct {
	LSN     LSN
	PrevLen uint32
	Payload []byte
}

// ParseFrames validates a shipped byte run as a contiguous chain of
// log frames starting at byte offset start, whose preceding frame had
// length prevLen (0 when start is 0). Every frame's magic, back-chain
// link, and CRC are checked; a torn, reordered, or duplicated run
// fails with ErrBadFrame rather than yielding partial results, because
// a receiver must apply a run entirely or not at all. An empty run
// parses to no frames.
func ParseFrames(start uint64, prevLen uint32, b []byte) ([]Frame, error) {
	var out []Frame
	off := uint64(0)
	n := uint64(len(b))
	for off < n {
		if n-off < frameHeaderSize {
			return nil, fmt.Errorf("%w: torn header at offset %d", ErrBadFrame, start+off)
		}
		hdr := b[off : off+frameHeaderSize]
		if hdr[0] != frameMagic {
			return nil, fmt.Errorf("%w: bad magic at offset %d", ErrBadFrame, start+off)
		}
		plen := binary.LittleEndian.Uint32(hdr[1:5])
		pl := binary.LittleEndian.Uint32(hdr[5:9])
		crc := binary.LittleEndian.Uint32(hdr[9:13])
		if pl != prevLen {
			return nil, fmt.Errorf("%w: back-chain %d at offset %d, want %d", ErrBadFrame, pl, start+off, prevLen)
		}
		if uint64(plen) > n-off-frameHeaderSize {
			return nil, fmt.Errorf("%w: torn payload at offset %d", ErrBadFrame, start+off)
		}
		payload := b[off+frameHeaderSize : off+frameHeaderSize+uint64(plen)]
		if frameCRC(plen, pl, payload) != crc {
			return nil, fmt.Errorf("%w: checksum mismatch at offset %d", ErrBadFrame, start+off)
		}
		out = append(out, Frame{LSN: LSN(start + off), PrevLen: pl, Payload: payload})
		prevLen = frameHeaderSize + plen
		off += uint64(frameHeaderSize) + uint64(plen)
	}
	return out, nil
}
