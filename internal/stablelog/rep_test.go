package stablelog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// repTestLog builds a forced log holding the given payloads and returns
// it with its total frame length.
func repTestLog(t testing.TB, payloads [][]byte) (*Log, uint64) {
	t.Helper()
	l, _, _ := freshLog(t, 128)
	var total uint64
	for _, p := range payloads {
		lsn, err := l.Write(p)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(lsn) != total {
			t.Fatalf("entry landed at %v, want %d", lsn, total)
		}
		total += uint64(frameHeaderSize + len(p))
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	return l, total
}

func TestTailInfo(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	if d, last := l.TailInfo(); d != 0 || last != 0 {
		t.Fatalf("empty log TailInfo = (%d, %d), want (0, 0)", d, last)
	}
	payload := []byte("hello stable log")
	l2, total := repTestLog(t, [][]byte{[]byte("first"), payload})
	d, last := l2.TailInfo()
	if d != total {
		t.Fatalf("durable = %d, want %d", d, total)
	}
	if want := uint32(frameHeaderSize + len(payload)); last != want {
		t.Fatalf("last frame len = %d, want %d", last, want)
	}
}

// ReadRaw excludes appended-but-unforced bytes: only locally durable
// frames are ever shipped.
func TestReadRawStopsAtDurableBoundary(t *testing.T) {
	l, total := repTestLog(t, [][]byte{[]byte("durable entry")})
	if _, err := l.Write([]byte("buffered entry")); err != nil {
		t.Fatal(err)
	}
	raw, prevLen, err := l.ReadRaw(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(raw)) != total || prevLen != 0 {
		t.Fatalf("ReadRaw = %d bytes, chain %d; want %d bytes, chain 0", len(raw), prevLen, total)
	}
	if _, _, err := l.ReadRaw(total, 1<<20); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("ReadRaw at durable boundary: err = %v, want ErrBadFrame", err)
	}
}

// ReadRaw chunks on frame boundaries: walking the log with a small max
// yields whole-frame runs that reparse to the original payload
// sequence, each run carrying the back-chain value its first frame
// needs.
func TestReadRawChunksReparse(t *testing.T) {
	var payloads [][]byte
	for i := 0; i < 9; i++ {
		payloads = append(payloads, bytes.Repeat([]byte{byte('a' + i)}, 5+i*7))
	}
	l, total := repTestLog(t, payloads)
	var got [][]byte
	cursor := uint64(0)
	for cursor < total {
		raw, prevLen, err := l.ReadRaw(cursor, 64)
		if err != nil {
			t.Fatalf("ReadRaw(%d): %v", cursor, err)
		}
		frames, err := ParseFrames(cursor, prevLen, raw)
		if err != nil {
			t.Fatalf("ParseFrames(%d): %v", cursor, err)
		}
		if len(frames) == 0 {
			t.Fatalf("ReadRaw(%d) returned no whole frame", cursor)
		}
		for _, f := range frames {
			if uint64(f.LSN) != cursor {
				t.Fatalf("frame LSN %v, want %d", f.LSN, cursor)
			}
			got = append(got, append([]byte(nil), f.Payload...))
			cursor += uint64(frameHeaderSize + len(f.Payload))
		}
	}
	if len(got) != len(payloads) {
		t.Fatalf("reparsed %d payloads, want %d", len(got), len(payloads))
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d = %q, want %q", i, got[i], payloads[i])
		}
	}
	// An offset inside a frame is not a boundary.
	if _, _, err := l.ReadRaw(1, 1<<20); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("mid-frame ReadRaw: err = %v, want ErrBadFrame", err)
	}
}

// A frame larger than max still ships alone — progress is always
// possible.
func TestReadRawOversizeFrame(t *testing.T) {
	big := bytes.Repeat([]byte{0xEE}, 400)
	l, total := repTestLog(t, [][]byte{big})
	raw, _, err := l.ReadRaw(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(raw)) != total {
		t.Fatalf("oversize frame shipped %d bytes, want %d", len(raw), total)
	}
}

func TestParseFramesRejectsCorruption(t *testing.T) {
	l, total := repTestLog(t, [][]byte{[]byte("alpha"), []byte("beta-beta")})
	raw, _, err := l.ReadRaw(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	first := frameHeaderSize + len("alpha")
	cases := []struct {
		name    string
		start   uint64
		prevLen uint32
		b       []byte
	}{
		{"torn header", 0, 0, raw[:frameHeaderSize-2]},
		{"torn payload", 0, 0, raw[:first-2]},
		{"bad magic", 0, 0, func() []byte {
			c := append([]byte(nil), raw...)
			c[0] ^= 0xFF
			return c
		}()},
		{"flipped payload bit", 0, 0, func() []byte {
			c := append([]byte(nil), raw...)
			c[frameHeaderSize] ^= 0x01
			return c
		}()},
		{"wrong start chain", uint64(first), 0, raw[first:]},
		{"duplicated frame", 0, 0, append(append([]byte(nil), raw[:first]...), raw[:first]...)},
		{"reordered frames", 0, 0, append(append([]byte(nil), raw[first:]...), raw[:first]...)},
	}
	for _, tc := range cases {
		if _, err := ParseFrames(tc.start, tc.prevLen, tc.b); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}
	// The untampered run parses in full, and an empty run is no frames.
	if frames, err := ParseFrames(0, 0, raw); err != nil || len(frames) != 2 {
		t.Fatalf("valid run: %d frames, %v", len(frames), err)
	}
	if frames, err := ParseFrames(total, 42, nil); err != nil || frames != nil {
		t.Fatalf("empty run: %v, %v; want nil, nil", frames, err)
	}
}

// FuzzDecodeRepFrame feeds arbitrary byte runs — including torn,
// duplicated, and reordered frames from the seed corpus — to the
// replication frame parser: no input may panic, and any accepted run
// must re-encode byte-for-byte from its parsed frames (the frame chain
// has exactly one valid serialization).
func FuzzDecodeRepFrame(f *testing.F) {
	mk := func(prevLen uint32, payloads ...[]byte) []byte {
		var out []byte
		for _, p := range payloads {
			plen := uint32(len(p))
			var hdr [frameHeaderSize]byte
			hdr[0] = frameMagic
			binary.LittleEndian.PutUint32(hdr[1:5], plen)
			binary.LittleEndian.PutUint32(hdr[5:9], prevLen)
			binary.LittleEndian.PutUint32(hdr[9:13], frameCRC(plen, prevLen, p))
			out = append(out, hdr[:]...)
			out = append(out, p...)
			prevLen = frameHeaderSize + plen
		}
		return out
	}
	valid := mk(0, []byte("one"), []byte("two-two"), []byte(""))
	f.Add(uint64(0), uint32(0), valid)
	f.Add(uint64(0), uint32(0), valid[:len(valid)-2])                            // torn tail
	f.Add(uint64(0), uint32(0), append(append([]byte(nil), valid...), valid...)) // duplicated run
	f.Add(uint64(16), uint32(13), mk(13, []byte("resumed")))                     // mid-log resume
	f.Add(uint64(0), uint32(0), []byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[frameHeaderSize+1] ^= 0x80
	f.Add(uint64(0), uint32(0), corrupt)

	f.Fuzz(func(t *testing.T, start uint64, prevLen uint32, data []byte) {
		frames, err := ParseFrames(start, prevLen, data)
		if err != nil {
			return
		}
		var re []byte
		chain := prevLen
		addr := start
		for _, fr := range frames {
			if uint64(fr.LSN) != addr {
				t.Fatalf("frame LSN %v, want %d", fr.LSN, addr)
			}
			if fr.PrevLen != chain {
				t.Fatalf("frame chain %d, want %d", fr.PrevLen, chain)
			}
			re = append(re, mk(chain, fr.Payload)...)
			chain = frameHeaderSize + uint32(len(fr.Payload))
			addr += uint64(frameHeaderSize + len(fr.Payload))
		}
		if !bytes.Equal(re, data) {
			t.Fatal("parsed frames do not re-encode to the input run")
		}
	})
}
