package stablelog

// Group-commit force scheduling.
//
// The thesis counts force operations as *the* write-cost measure of a
// stable-storage organization (§1.2, §4.1): every outcome entry must be
// forced before the action acknowledges, and on the simple and hybrid
// logs the force is the only synchronous device work on the commit
// path. When actions commit one at a time each pays a full force; when
// they commit concurrently the forces can be shared, because a force
// flushes the whole buffered suffix — durability of a log is always a
// prefix property, so one device force covers every entry appended
// before its snapshot (group commit, as in log-structured stores).
//
// ForceTo(lsn) is the await-durable half of the split write path:
// append with Write (returns the LSN immediately), then ForceTo blocks
// until some force — not necessarily one this caller started — covers
// the entry. Concurrent waiters elect a leader; the leader runs one
// device force while the others wait for the round to complete and then
// re-check coverage. The scheduler is purely reactive: it spawns no
// goroutines and uses no timers (the determinism analyzer forbids both
// in the crash sweep's packages), so a force happens only inside some
// caller's ForceTo, and a single-threaded caller sequence produces
// exactly the same device-write sequence as the pre-scheduler code.
//
// Synchronous mode (SetSynchronousForces) bypasses the leader election:
// every uncovered ForceTo runs its own force immediately. The crash
// harness pins its guardians to this mode so the exhaustive sweep's
// write counting never depends on scheduler state.

import (
	"runtime"
	"sync"

	"repro/internal/obs"
)

// forceScheduler coalesces concurrent ForceTo calls on one Log into
// shared force rounds. Its mu orders before Log.mu (coverage checks
// acquire Log.mu while holding sched.mu); nothing acquires sched.mu
// while holding a Log mutex.
type forceScheduler struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast at the end of every force round

	inFlight bool   // a leader is running a device force
	round    uint64 // completed force rounds
	err      error  // outcome of the most recent round
	syncMode bool   // bypass coalescing: every ForceTo forces directly

	leads int // ForceTo calls that ran a device force themselves
	rides int // ForceTo calls that waited on another caller's force
}

// SetSynchronousForces switches the log between group-commit force
// scheduling (off, the default) and fully synchronous forcing (on):
// with it on, every uncovered ForceTo performs its own device force
// before returning. The crash-injection harness uses synchronous mode
// so a scripted history's device-write sequence is a pure function of
// the call sequence.
func (l *Log) SetSynchronousForces(on bool) {
	l.sched.mu.Lock()
	l.sched.syncMode = on
	l.sched.mu.Unlock()
}

// SchedulerStats returns how many ForceTo calls led a force round
// themselves and how many rode a round led by another caller (after a
// ride a caller may still lead a later round; it then counts in both).
func (l *Log) SchedulerStats() (leads, rides int) {
	l.sched.mu.Lock()
	defer l.sched.mu.Unlock()
	return l.sched.leads, l.sched.rides
}

// covered reports whether the entry at lsn is already durable: forces
// advance the durable boundary to a frame boundary, so an entry is
// durable exactly when its frame starts below it.
func (l *Log) covered(lsn LSN) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(lsn) < l.durable
}

// forceToLocal blocks until the entry written at lsn is on stable
// storage, forcing the log if no other caller's force covers it first
// (§3.1 force_write semantics, split from the append). It is the
// device half of ForceTo (rep.go), which follows it with the quorum
// wait when a replicator is installed. forceToLocal(NoLSN) is a no-op.
// On a force error every waiter of that round receives the error; the
// entry is then not durable and the caller must not acknowledge its
// outcome.
func (l *Log) forceToLocal(lsn LSN) error {
	if lsn == NoLSN {
		return nil
	}
	s := &l.sched
	s.mu.Lock()
	if s.syncMode {
		s.mu.Unlock()
		if l.covered(lsn) {
			return nil
		}
		return l.Force()
	}
	for {
		if l.covered(lsn) {
			s.mu.Unlock()
			return nil
		}
		if !s.inFlight {
			// Become the leader: run one device force for every entry
			// appended so far, then wake the riders.
			s.inFlight = true
			s.leads++
			s.mu.Unlock()
			// Let the group assemble before the snapshot. When a round
			// ends, the riders it covered need a slice of CPU to run
			// their commit protocol and append their next outcome entry;
			// if the new leader snapshots first, those entries miss this
			// round and every entry waits two rounds instead of one.
			// One cooperative yield — not a timer, which the
			// determinism contract forbids — is enough for runnable
			// committers to reach their appends, and is a no-op for a
			// single-threaded caller, so the device-write sequence of a
			// sequential history is unchanged.
			runtime.Gosched()
			err := l.Force()
			s.mu.Lock()
			s.inFlight = false
			s.round++
			s.err = err
			s.cond.Broadcast()
			s.mu.Unlock()
			return err
		}
		// A force is in flight but its snapshot may predate our entry:
		// wait for the round to end, then re-check coverage.
		s.rides++
		if tr := l.tracer(); tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindForceWait, LSN: uint64(lsn)})
		}
		round := s.round
		for s.round == round {
			s.cond.Wait()
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return err
		}
	}
}
