package stablelog

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/stable"
)

// FileVolume is a Volume whose devices are files in a directory, for
// running a guardian's stable storage on a real filesystem. Each store
// is a pair of files (the two "independent" devices; place the
// directory's halves on separate disks for real independence).
type FileVolume struct {
	mu        sync.Mutex
	dir       string
	blockSize int
	syncAll   bool
	budget    *stable.Budget
	root      *stable.Store
	gens      map[uint64]*stable.Store
	open      []*stable.FileDevice
}

// NewFileVolume returns a volume rooted at dir (created if needed).
// syncEveryWrite selects fsync-per-block-write durability.
func NewFileVolume(dir string, blockSize int, syncEveryWrite bool) (*FileVolume, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileVolume{
		dir:       dir,
		blockSize: blockSize,
		syncAll:   syncEveryWrite,
		gens:      make(map[uint64]*stable.Store),
	}, nil
}

// NewFileVolumeCapped is NewFileVolume with a byte budget shared by
// every device in the directory — a size-capped data directory
// modeling a full disk. Files already present (a reopened volume)
// charge the budget at open, so the cap is on the directory's total
// footprint, not on growth since boot. Writes past the cap fail with
// stable.ErrNoSpace; overwrites of existing blocks stay free, so a
// full volume still recovers.
func NewFileVolumeCapped(dir string, blockSize int, syncEveryWrite bool, capBytes int64) (*FileVolume, error) {
	v, err := NewFileVolume(dir, blockSize, syncEveryWrite)
	if err != nil {
		return nil, err
	}
	v.budget = stable.NewBudget(capBytes)
	return v, nil
}

// BlockSize reports the block size the volume's devices use.
func (v *FileVolume) BlockSize() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.blockSize
}

func (v *FileVolume) pair(name string) (*stable.Store, error) {
	a, err := stable.OpenFileDevice(filepath.Join(v.dir, name+"-a"), v.blockSize, v.syncAll)
	if err != nil {
		return nil, err
	}
	b, err := stable.OpenFileDevice(filepath.Join(v.dir, name+"-b"), v.blockSize, v.syncAll)
	if err != nil {
		//roslint:besteffort cleanup on a path already failing; the open error is what the caller needs
		a.Close()
		return nil, err
	}
	v.open = append(v.open, a, b)
	if v.budget == nil {
		return stable.NewStore(a, b)
	}
	// Pre-existing blocks are footprint already on the "disk": charge
	// them so a reopened capped volume stays capped.
	existing := int64(a.NumBlocks()+b.NumBlocks()) * int64(v.blockSize)
	if err := v.budget.Charge(existing); err != nil {
		return nil, fmt.Errorf("stablelog: volume %s: %d existing bytes in %s exceed the cap: %w",
			v.dir, existing, name, err)
	}
	return stable.NewStore(stable.Capped(a, v.budget), stable.Capped(b, v.budget))
}

// Root implements Volume.
func (v *FileVolume) Root() (*stable.Store, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.root == nil {
		s, err := v.pair("root")
		if err != nil {
			return nil, err
		}
		v.root = s
	}
	return v.root, nil
}

// Generation implements Volume.
func (v *FileVolume) Generation(gen uint64) (*stable.Store, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.gens[gen]; ok {
		return s, nil
	}
	s, err := v.pair(fmt.Sprintf("gen%d", gen))
	if err != nil {
		return nil, err
	}
	v.gens[gen] = s
	return s, nil
}

// Remove implements Volume.
func (v *FileVolume) Remove(gen uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.gens, gen)
	os.Remove(filepath.Join(v.dir, fmt.Sprintf("gen%d-a", gen)))
	os.Remove(filepath.Join(v.dir, fmt.Sprintf("gen%d-b", gen)))
}

// Close releases every open device. A volume must not be used after
// Close; reopen the directory with NewFileVolume (the "reboot").
func (v *FileVolume) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	var first error
	for _, d := range v.open {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	v.open = nil
	v.root = nil
	v.gens = make(map[uint64]*stable.Store)
	return first
}
