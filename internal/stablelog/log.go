// Package stablelog implements the stable log abstraction of thesis
// §3.1: an append-only array of entries addressed by log addresses
// (LSNs), layered on atomic stable storage (package stable).
//
// The abstraction's operations map to the thesis's interface as follows
// ([Raible 83] operations in parentheses):
//
//	Write       (write)         — buffered append; durable only after a force
//	ForceWrite  (force_write)   — append and force this and all older entries
//	Read        (read)          — entry at a given log address
//	ReadBackward(read_backward) — iterate entries backward from an address
//	Top         (get_top)       — address of the last forced entry
//	CreateSite / Site.Destroy (create/destroy)
//
// Entries are framed with a length, a back-pointer to the previous
// frame, and a CRC; a crash can lose buffered (unforced) entries and at
// worst leave a torn tail, which Open detects and discards. Each
// guardian has its own log (§3.1); housekeeping (thesis ch. 5) replaces
// the log with a new one "in one atomic step", which Site implements
// with a generation pointer held on its own stable page.
package stablelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/obs"
	"repro/internal/stable"
)

// LSN is a log address: the byte offset of an entry's frame in the log.
type LSN uint64

// NoLSN is the nil log address (used, e.g., as the chain terminator of
// the hybrid log's backward chain of outcome entries).
const NoLSN LSN = ^LSN(0)

func (l LSN) String() string {
	if l == NoLSN {
		return "L<nil>"
	}
	return fmt.Sprintf("L%d", uint64(l))
}

const (
	frameMagic      = 0xA7
	frameHeaderSize = 1 + 4 + 4 + 4 // magic, payload len, prev frame len, crc

	// superPage is the store page holding the log's superblock: the
	// durable byte count and the address of the last forced entry. It
	// is rewritten (atomically, like any stable page) at the end of
	// every force, which is what makes get_top O(1) — the stable log
	// abstraction is "presumably implemented in an efficient way"
	// (§3.1). Log bytes start at page 1.
	superPage     = 0
	firstDataPage = 1
	superSize     = 8 + 8 + 4 // durable bytes, last entry LSN, last frame len
)

// MaxEntry bounds one entry's payload. Replication ships whole frames
// and can never split one (ReadRaw always returns at least one frame),
// so a frame must fit a single rep.append request within the wire
// layer's 1 MiB payload bound with room for the frame header and the
// message envelopes — otherwise the entry could be written and forced
// locally but never replicated, wedging every subsequent quorum wait.
// The 1 KiB of slack comfortably covers those headers; a test in
// internal/replog pins the arithmetic against wire.MaxPayload.
const MaxEntry = 1<<20 - 1024

// ErrEntryTooLarge is returned by Write and ForceWrite for a payload
// exceeding MaxEntry.
var ErrEntryTooLarge = errors.New("stablelog: entry exceeds MaxEntry")

// ErrNoEntry is returned by Read for an address that does not hold an
// entry.
var ErrNoEntry = errors.New("stablelog: no entry at address")

// Log is one guardian's stable log. All methods are safe for concurrent
// use; the thesis assumes recovery-system operations are sequential
// (§2.3), but housekeeping reads the old log while writes continue, and
// independent actions append and await forces concurrently.
type Log struct {
	// forceMu serializes force rounds. A force snapshots the buffered
	// suffix under mu, performs the store I/O with mu released — so
	// appends and reads proceed while the device writes run — and then
	// publishes the new durable boundary under mu. Lock order:
	// forceMu → mu → Store → Device; never the reverse.
	forceMu  sync.Mutex
	mu       sync.Mutex
	store    *stable.Store
	pageSize int

	durable  uint64 // byte offset up to which the store holds the log
	tail     uint64 // next append offset (durable + buffered)
	buf      []byte // appended but unforced bytes [durable, tail)
	tailImg  []byte // contents of the partially filled durable page
	lastLSN  LSN    // address of the most recently appended entry
	last     uint32 // frame length of the most recently appended entry
	forced   LSN    // address of the last entry known forced
	nEntries int    // appended entries (including buffered)
	nForces  int    // force operations performed (statistics)

	// sched coalesces concurrent ForceTo waiters into shared force
	// rounds (see scheduler.go).
	sched forceScheduler

	// tr receives append and force events; nil (the default) traces
	// nothing. Guarded by mu; emission sites capture it under mu and
	// emit after unlocking where practical, so a sink never runs
	// inside the log's locks except on the append path.
	tr obs.Tracer

	// rep, when non-nil, extends ForceTo with a replica quorum wait
	// after local durability (see rep.go). Guarded by mu; the wait
	// itself runs with every log lock released.
	rep Replicator
}

// SetTracer installs (or, with nil, removes) the log's event tracer
// and emits a log.open event carrying the current durable boundary, so
// a stream consumer — in particular obs.Checker's force-barrier rule —
// learns the boundary that subsequent appends and forces start from.
// It is called on a fresh log, on a log reopened after a crash, and on
// the new generation installed by a housekeeping switch.
func (l *Log) SetTracer(tr obs.Tracer) {
	l.mu.Lock()
	l.tr = tr
	durable := l.durable
	l.mu.Unlock()
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindLogOpen, Durable: durable})
	}
}

// tracer returns the installed tracer (nil for none).
func (l *Log) tracer() obs.Tracer {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tr
}

// New returns an empty log over a fresh store.
func New(store *stable.Store) *Log {
	l := &Log{
		store:    store,
		pageSize: store.PageSize(),
		lastLSN:  NoLSN,
		forced:   NoLSN,
		tailImg:  make([]byte, store.PageSize()),
	}
	l.sched.cond = sync.NewCond(&l.sched.mu)
	return l
}

// Open reconstructs a log from a store after a crash. Buffered entries
// that were never forced are gone: the superblock — rewritten at the
// end of every force — names the durable prefix, and anything beyond it
// (including a torn tail from a crash mid-force) is discarded. The
// store itself must already have been repaired (stable.Store.Recover).
//
// If the superblock itself is lost on both devices (double decay), the
// log is salvaged instead: the superblock is redundant with the frame
// chain, so a forward scan over the data pages rebuilds the durable
// prefix frame by frame, stopping at the first torn or unreadable
// frame, and rewrites the superblock.
func Open(store *stable.Store) (*Log, error) {
	l := New(store)
	sb, err := store.ReadPage(superPage)
	if err != nil {
		if errors.Is(err, stable.ErrDataLoss) {
			return salvageOpen(store)
		}
		return nil, err
	}
	if len(sb) < superSize {
		// Never forced: the log is empty.
		return l, nil
	}
	off := binary.LittleEndian.Uint64(sb[0:8])
	lastLSN := LSN(binary.LittleEndian.Uint64(sb[8:16]))
	last := binary.LittleEndian.Uint32(sb[16:20])
	l.durable = off
	l.tail = off
	l.lastLSN = lastLSN
	l.last = last
	l.forced = lastLSN
	l.nEntries = -1 // unknown without a scan; counted lazily below
	// Rebuild the partial tail page image so the next flush preserves
	// the bytes that precede the append point within that page.
	pageStart := off - off%uint64(l.pageSize)
	if off > pageStart {
		img, err := l.readDurable(pageStart, int(off-pageStart), off)
		if err != nil {
			return nil, err
		}
		if img == nil {
			return nil, fmt.Errorf("stablelog: superblock names %d durable bytes but tail page is short", off)
		}
		copy(l.tailImg, img)
	}
	return l, nil
}

// salvageOpen rebuilds a log whose superblock is lost on both devices.
// Frames are laid down contiguously from byte 0 of the first data page,
// each self-describing (magic, lengths, CRC) and back-chained by the
// previous frame's length, so the durable prefix is reconstructible by
// a forward scan: accept frames while they validate, stop at the first
// hole. A complete suffix whose superblock write was interrupted is
// thereby resurrected — the crash-during-force ambiguity is resolved as
// "the force happened", which is always safe (forces are not
// acknowledged to clients until the superblock lands, and replaying a
// complete unacknowledged suffix only adds entries the upper layer
// wrote itself). The scan then heals the superblock.
func salvageOpen(store *stable.Store) (*Log, error) {
	l := New(store)
	ps := uint64(l.pageSize)
	limit := uint64(0)
	if n := store.NumPages(); n > firstDataPage {
		limit = uint64(n-firstDataPage) * ps
	}
	var (
		off     uint64
		prevLen uint32
	)
	l.nEntries = 0
	for {
		hdr, err := l.readDurable(off, frameHeaderSize, limit)
		if err != nil || hdr == nil || hdr[0] != frameMagic {
			break // hole, lost page, or end of extent: durable prefix ends here
		}
		plen := binary.LittleEndian.Uint32(hdr[1:5])
		pl := binary.LittleEndian.Uint32(hdr[5:9])
		crc := binary.LittleEndian.Uint32(hdr[9:13])
		if pl != prevLen {
			break // back-chain mismatch: stale bytes, not a live frame
		}
		payload, err := l.readDurable(off+frameHeaderSize, int(plen), limit)
		if err != nil || payload == nil || frameCRC(plen, pl, payload) != crc {
			break
		}
		l.lastLSN = LSN(off)
		l.last = uint32(frameHeaderSize) + plen
		prevLen = l.last
		off += uint64(l.last)
		l.nEntries++
	}
	l.durable = off
	l.tail = off
	l.forced = l.lastLSN
	pageStart := off - off%ps
	if off > pageStart {
		img, err := l.readDurable(pageStart, int(off-pageStart), off)
		if err != nil || img == nil {
			return nil, fmt.Errorf("stablelog: salvage cannot reread tail page at %d: %v", pageStart, err)
		}
		copy(l.tailImg, img)
	}
	var sb [superSize]byte
	binary.LittleEndian.PutUint64(sb[0:8], l.tail)
	binary.LittleEndian.PutUint64(sb[8:16], uint64(l.lastLSN))
	binary.LittleEndian.PutUint32(sb[16:20], l.last)
	if err := store.WritePage(superPage, sb[:]); err != nil {
		return nil, fmt.Errorf("stablelog: salvage cannot heal superblock: %w", err)
	}
	return l, nil
}

func frameCRC(plen, prevLen uint32, payload []byte) uint32 {
	var h [9]byte
	h[0] = frameMagic
	binary.LittleEndian.PutUint32(h[1:5], plen)
	binary.LittleEndian.PutUint32(h[5:9], prevLen)
	crc := crc32.ChecksumIEEE(h[:])
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// readDurable returns n bytes starting at byte offset off, read from the
// store's pages, or nil if the range extends past limit.
func (l *Log) readDurable(off uint64, n int, limit uint64) ([]byte, error) {
	if n == 0 {
		return []byte{}, nil
	}
	if off+uint64(n) > limit {
		return nil, nil
	}
	out := make([]byte, 0, n)
	ps := uint64(l.pageSize)
	for len(out) < n {
		page := firstDataPage + int(off/ps)
		in := off % ps
		data, err := l.store.ReadPage(page)
		if err != nil {
			return nil, err
		}
		if uint64(len(data)) <= in {
			return nil, nil // page shorter than expected: past the end
		}
		take := uint64(n - len(out))
		if avail := uint64(len(data)) - in; avail < take {
			take = avail
		}
		out = append(out, data[in:in+take]...)
		off += take
	}
	return out, nil
}

// Write appends an entry and returns its address. The entry is durable
// only after a subsequent Force/ForceWrite ("the actual writing of the
// data to the stable storage device may not have happened when this
// operation returns", §3.1). Payloads above MaxEntry are refused with
// ErrEntryTooLarge — see the constant for why the bound exists.
func (l *Log) Write(payload []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeLocked(payload)
}

func (l *Log) writeLocked(payload []byte) (LSN, error) {
	if len(payload) > MaxEntry {
		return NoLSN, fmt.Errorf("%w: %d > %d bytes", ErrEntryTooLarge, len(payload), MaxEntry)
	}
	lsn := LSN(l.tail)
	frame := make([]byte, frameHeaderSize+len(payload))
	frame[0] = frameMagic
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(payload)))
	prev := uint32(0)
	if l.lastLSN != NoLSN {
		prev = l.last
	}
	binary.LittleEndian.PutUint32(frame[5:9], prev)
	binary.LittleEndian.PutUint32(frame[9:13], frameCRC(uint32(len(payload)), prev, payload))
	copy(frame[frameHeaderSize:], payload)
	l.buf = append(l.buf, frame...)
	l.tail += uint64(len(frame))
	l.lastLSN = lsn
	l.last = uint32(len(frame))
	if l.nEntries >= 0 {
		l.nEntries++
	}
	if l.tr != nil {
		l.tr.Emit(obs.Event{Kind: obs.KindLogAppend, LSN: uint64(lsn), Bytes: len(frame)})
	}
	return lsn, nil
}

// ForceWrite appends an entry and forces it — and every older buffered
// entry — to stable storage before returning (§3.1). It is Write
// followed by ForceTo, so concurrent ForceWrite callers share force
// rounds through the scheduler.
func (l *Log) ForceWrite(payload []byte) (LSN, error) {
	lsn, err := l.Write(payload)
	if err != nil {
		return NoLSN, err
	}
	if err := l.ForceTo(lsn); err != nil {
		return NoLSN, err
	}
	return lsn, nil
}

// Force flushes all buffered entries to stable storage.
func (l *Log) Force() error {
	l.forceMu.Lock()
	defer l.forceMu.Unlock()
	return l.forceRound()
}

// forceRound performs one device force: it snapshots the buffered
// suffix under mu, writes it to the store with mu released (appends and
// reads continue meanwhile; readAt never serves past the unchanged
// durable boundary, and the flushed prefix of the tail page keeps its
// byte values), seals the force with the superblock, and publishes the
// new durable boundary. Entries appended after the snapshot stay
// buffered for the next round. Callers hold forceMu, which serializes
// rounds, so the snapshot's prefix of buf is stable throughout.
func (l *Log) forceRound() error {
	l.mu.Lock()
	if len(l.buf) == 0 {
		l.forced = l.lastLSN
		l.mu.Unlock()
		return nil
	}
	snapBuf := l.buf
	snapTail := l.tail
	snapLastLSN := l.lastLSN
	snapLast := l.last
	ps := uint64(l.pageSize)
	start := l.durable
	partial := start % ps
	tr := l.tr
	// Assemble the byte stream from the start of the tail page.
	data := make([]byte, 0, int(partial)+len(snapBuf))
	data = append(data, l.tailImg[:partial]...)
	data = append(data, snapBuf...)
	l.mu.Unlock()

	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindForceStart, LSN: uint64(snapLastLSN),
			Durable: start, Bytes: len(snapBuf)})
	}
	fail := func(err error) error {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindForceDone, LSN: uint64(snapLastLSN),
				Durable: start, Bytes: len(snapBuf), Note: err.Error()})
		}
		return err
	}
	page := firstDataPage + int(start/ps)
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > int(ps) {
			n = int(ps)
		}
		if err := l.store.WritePage(page, data[off:off+n]); err != nil {
			return fail(err)
		}
		off += n
		page++
	}
	// Seal the force with the superblock: once this atomic page write
	// lands, the new prefix is the durable log; if the node crashes
	// first, Open falls back to the previous superblock and the
	// unacknowledged entries vanish, as §2.2.3 requires.
	var sb [superSize]byte
	binary.LittleEndian.PutUint64(sb[0:8], snapTail)
	binary.LittleEndian.PutUint64(sb[8:16], uint64(snapLastLSN))
	binary.LittleEndian.PutUint32(sb[16:20], snapLast)
	if err := l.store.WritePage(superPage, sb[:]); err != nil {
		return fail(err)
	}

	l.mu.Lock()
	l.durable = snapTail
	// Drop the flushed prefix; entries appended during the round remain.
	l.buf = append(l.buf[:0], l.buf[len(snapBuf):]...)
	newPartial := l.durable % ps
	tailStart := len(data) - int(newPartial)
	copy(l.tailImg, data[tailStart:])
	l.forced = snapLastLSN
	l.nForces++
	l.mu.Unlock()
	if tr != nil {
		// Emitted before the scheduler broadcasts the round's
		// completion, so this force.done precedes every outcome it
		// covers in the stream (obs.Checker's R1 relies on that).
		tr.Emit(obs.Event{Kind: obs.KindForceDone, LSN: uint64(snapLastLSN),
			Durable: snapTail, Bytes: len(snapBuf), OK: true})
	}
	return nil
}

// readAt serves n bytes at off from durable pages or, past the durable
// boundary, from the in-memory buffer.
func (l *Log) readAt(off uint64, n int) ([]byte, error) {
	if off+uint64(n) > l.tail {
		return nil, nil
	}
	if off >= l.durable {
		b := l.buf[off-l.durable : off-l.durable+uint64(n)]
		out := make([]byte, n)
		copy(out, b)
		return out, nil
	}
	if off+uint64(n) <= l.durable {
		return l.readDurable(off, n, l.durable)
	}
	head, err := l.readDurable(off, int(l.durable-off), l.durable)
	if err != nil || head == nil {
		return head, err
	}
	rest := n - len(head)
	return append(head, l.buf[:rest]...), nil
}

// Read returns the entry whose frame starts at address lsn.
func (l *Log) Read(lsn LSN) ([]byte, error) {
	payload, _, err := l.readFrame(lsn)
	return payload, err
}

// readFrame returns the payload at lsn and the length of the previous
// frame (0 if lsn is the first entry).
func (l *Log) readFrame(lsn LSN) ([]byte, uint32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readFrameLocked(lsn)
}

func (l *Log) readFrameLocked(lsn LSN) ([]byte, uint32, error) {
	if lsn == NoLSN || uint64(lsn) >= l.tail {
		return nil, 0, ErrNoEntry
	}
	hdr, err := l.readAt(uint64(lsn), frameHeaderSize)
	if err != nil {
		return nil, 0, err
	}
	if hdr == nil || hdr[0] != frameMagic {
		return nil, 0, ErrNoEntry
	}
	plen := binary.LittleEndian.Uint32(hdr[1:5])
	prevLen := binary.LittleEndian.Uint32(hdr[5:9])
	crc := binary.LittleEndian.Uint32(hdr[9:13])
	payload, err := l.readAt(uint64(lsn)+frameHeaderSize, int(plen))
	if err != nil {
		return nil, 0, err
	}
	if payload == nil || frameCRC(plen, prevLen, payload) != crc {
		return nil, 0, ErrNoEntry
	}
	return payload, prevLen, nil
}

// Top returns the address of the last entry forced to the log, or NoLSN
// if the log is empty (§3.1 get_top).
func (l *Log) Top() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forced
}

// LastAppended returns the address of the most recently appended entry,
// forced or not.
func (l *Log) LastAppended() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Prev returns the address of the entry preceding lsn, or NoLSN if lsn
// is the first entry.
func (l *Log) Prev(lsn LSN) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, prevLen, err := l.readFrameLocked(lsn)
	if err != nil {
		return NoLSN, err
	}
	if prevLen == 0 {
		return NoLSN, nil
	}
	return LSN(uint64(lsn) - uint64(prevLen)), nil
}

// ReadBackward calls fn for each entry from lsn back to the first entry,
// stopping early if fn returns false (§3.1 read_backward).
func (l *Log) ReadBackward(lsn LSN, fn func(lsn LSN, payload []byte) bool) error {
	for lsn != NoLSN {
		payload, prevLen, err := l.readFrame(lsn)
		if err != nil {
			return fmt.Errorf("stablelog: backward read at %v: %w", lsn, err)
		}
		if !fn(lsn, payload) {
			return nil
		}
		if prevLen == 0 {
			return nil
		}
		lsn = LSN(uint64(lsn) - uint64(prevLen))
	}
	return nil
}

// Entries returns the number of entries in the log (including
// buffered). On a log just reopened after a crash the count is
// determined by a one-time walk of the frame back-chain; recovery
// itself never needs it, so Open defers the walk until asked.
func (l *Log) Entries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nEntries < 0 {
		n := 0
		for lsn := l.lastLSN; lsn != NoLSN; {
			_, prevLen, err := l.readFrameLocked(lsn)
			if err != nil {
				break
			}
			n++
			if prevLen == 0 {
				break
			}
			lsn = LSN(uint64(lsn) - uint64(prevLen))
		}
		l.nEntries = n
	}
	return l.nEntries
}

// Forces returns how many force operations the log has performed.
func (l *Log) Forces() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nForces
}

// Size returns the log length in bytes (including buffered entries).
func (l *Log) Size() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}
