package stablelog

import (
	"fmt"
	"testing"
)

func TestFileVolumeSiteLifecycle(t *testing.T) {
	dir := t.TempDir()
	vol, err := NewFileVolume(dir, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	site, err := CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []LSN
	for i := 0; i < 20; i++ {
		lsn, err := site.Log().Write([]byte(fmt.Sprintf("entry-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := site.Log().Force(); err != nil {
		t.Fatal(err)
	}
	// "Reboot": close every handle, reopen the directory.
	if err := vol.Close(); err != nil {
		t.Fatal(err)
	}
	vol2, err := NewFileVolume(dir, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	defer vol2.Close()
	site2, err := OpenSite(vol2)
	if err != nil {
		t.Fatal(err)
	}
	for i, lsn := range lsns {
		got, err := site2.Log().Read(lsn)
		if err != nil {
			t.Fatalf("Read(%v): %v", lsn, err)
		}
		if want := fmt.Sprintf("entry-%d", i); string(got) != want {
			t.Fatalf("entry %d = %q", i, got)
		}
	}
}

func TestFileVolumeSwitchRemovesOldGeneration(t *testing.T) {
	dir := t.TempDir()
	vol, err := NewFileVolume(dir, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	defer vol.Close()
	site, err := CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	site.Log().ForceWrite([]byte("old"))
	newLog, gen, err := site.NewLog()
	if err != nil {
		t.Fatal(err)
	}
	newLog.ForceWrite([]byte("new"))
	if err := site.Switch(newLog, gen); err != nil {
		t.Fatal(err)
	}
	got, err := site.Log().Read(site.Log().Top())
	if err != nil || string(got) != "new" {
		t.Fatalf("after switch: %q %v", got, err)
	}
}

func TestFileVolumeUnforcedEntriesLostOnReboot(t *testing.T) {
	dir := t.TempDir()
	vol, err := NewFileVolume(dir, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	site, err := CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	forced, err := site.Log().ForceWrite([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := site.Log().Write([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	vol.Close()
	vol2, err := NewFileVolume(dir, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	defer vol2.Close()
	site2, err := OpenSite(vol2)
	if err != nil {
		t.Fatal(err)
	}
	if site2.Log().Top() != forced {
		t.Fatalf("Top = %v, want %v", site2.Log().Top(), forced)
	}
	if site2.Log().Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", site2.Log().Entries())
	}
}
