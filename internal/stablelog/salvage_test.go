package stablelog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/stable"
)

// TestSalvageLostSuperblock: both copies of the superblock decay; Open
// rebuilds the durable prefix from the frame chain and heals the
// superblock, losing nothing.
func TestSalvageLostSuperblock(t *testing.T) {
	l, a, b := freshLog(t, 128)
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsn, err := l.ForceWrite([]byte(fmt.Sprintf("entry-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	top := l.Top()
	a.Decay(superPage)
	b.Decay(superPage)
	l2 := reopen(t, a, b)
	if l2.Top() != top {
		t.Fatalf("salvaged Top = %v, want %v", l2.Top(), top)
	}
	if n := l2.Entries(); n != 10 {
		t.Fatalf("salvaged log has %d entries, want 10", n)
	}
	for i, lsn := range lsns {
		got, err := l2.Read(lsn)
		if err != nil {
			t.Fatalf("read %v after salvage: %v", lsn, err)
		}
		if want := fmt.Sprintf("entry-%02d", i); string(got) != want {
			t.Fatalf("entry %d = %q, want %q", i, got, want)
		}
	}
	// The superblock is healed: a third open must not need salvage.
	if _, err := l2.store.ReadPage(superPage); err != nil {
		t.Fatalf("superblock not healed: %v", err)
	}
	// And the log accepts appends whose bytes land after the prefix.
	lsn, err := l2.ForceWrite([]byte("post-salvage"))
	if err != nil {
		t.Fatal(err)
	}
	l3 := reopen(t, a, b)
	got, err := l3.Read(lsn)
	if err != nil || string(got) != "post-salvage" {
		t.Fatalf("post-salvage entry = %q, %v", got, err)
	}
}

// TestSalvageEmptyLog: superblock loss on a log that was never forced
// salvages to an empty log.
func TestSalvageEmptyLog(t *testing.T) {
	l, a, b := freshLog(t, 128)
	if err := l.Force(); err != nil { // empty force writes nothing
		t.Fatal(err)
	}
	a.Decay(superPage)
	b.Decay(superPage)
	// Force the store to know about page 0 on both devices.
	l2 := reopen(t, a, b)
	if l2.Top() != NoLSN || l2.Entries() != 0 {
		t.Fatalf("salvaged empty log: top %v entries %d", l2.Top(), l2.Entries())
	}
}

// TestSalvageStopsAtLostDataPage: when a data page inside the durable
// region is lost on both devices, salvage keeps the intact prefix and
// truncates there rather than failing or fabricating entries.
func TestSalvageStopsAtLostDataPage(t *testing.T) {
	l, a, b := freshLog(t, 64)
	// Enough entries to span several data pages (page payload 64-16=48).
	var lsns []LSN
	for i := 0; i < 12; i++ {
		lsn, err := l.ForceWrite(bytes.Repeat([]byte{byte('a' + i)}, 20))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	a.Decay(superPage)
	b.Decay(superPage)
	const lostPage = firstDataPage + 2
	a.Decay(lostPage)
	b.Decay(lostPage)
	l2 := reopen(t, a, b)
	// Every salvaged entry must precede the lost page.
	cut := uint64(lostPage-firstDataPage) * uint64(l2.pageSize)
	if l2.tail > cut {
		t.Fatalf("salvage kept %d bytes past lost page boundary %d", l2.tail, cut)
	}
	n := l2.Entries()
	if n == 0 || n >= 12 {
		t.Fatalf("salvage kept %d entries, want a proper nonempty prefix of 12", n)
	}
	for i := 0; i < n; i++ {
		got, err := l2.Read(lsns[i])
		if err != nil {
			t.Fatalf("prefix entry %d unreadable after salvage: %v", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte('a' + i)}, 20)) {
			t.Fatalf("prefix entry %d corrupted", i)
		}
	}
}

// TestOpenSiteNoSite: a volume that never completed CreateSite reports
// ErrNoSite, distinguishable from corruption.
func TestOpenSiteNoSite(t *testing.T) {
	vol := NewMemVolume(128)
	if _, err := vol.Root(); err != nil { // allocate the root pair only
		t.Fatal(err)
	}
	if _, err := OpenSite(vol); !errors.Is(err, ErrNoSite) {
		t.Fatalf("OpenSite on siteless volume: err = %v, want ErrNoSite", err)
	}
}

// TestGlobalCrashArming: the volume-wide counter sees every device
// write (two per page) and an armed crash stops the node at exactly
// that write.
func TestGlobalCrashArming(t *testing.T) {
	vol := NewMemVolume(128)
	vol.ArmGlobalCrashAtWrite(0) // count only
	site, err := CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := site.Log().ForceWrite([]byte("x")); err != nil {
		t.Fatal(err)
	}
	w := vol.GlobalWrites()
	// CreateSite writes the root gen pointer (2 device writes); the
	// force writes one data page and the superblock (4 device writes).
	if w != 6 {
		t.Fatalf("GlobalWrites = %d, want 6", w)
	}
	if vol.GlobalCrashFired() {
		t.Fatal("counter-only plan fired a crash")
	}
	// Replay on a fresh volume, crashing at the very last write.
	vol2 := NewMemVolume(128)
	vol2.ArmGlobalCrashAtWrite(w)
	site2, err := CreateSite(vol2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = site2.Log().ForceWrite([]byte("x"))
	if !errors.Is(err, stable.ErrCrashed) {
		t.Fatalf("armed write: err = %v, want ErrCrashed", err)
	}
	if !vol2.GlobalCrashFired() {
		t.Fatal("armed crash did not report fired")
	}
	// Write w is the superblock's second copy: the first completed, so
	// recovery rolls the force forward and the entry survives.
	vol2.Crash()
	vol2.Restart()
	site3, err := OpenSite(vol2)
	if err != nil {
		t.Fatal(err)
	}
	if site3.Log().Top() != LSN(0) {
		t.Fatalf("crash on second superblock copy: top %v, want L0 (roll forward)", site3.Log().Top())
	}
	if got, err := site3.Log().Read(LSN(0)); err != nil || string(got) != "x" {
		t.Fatalf("rolled-forward entry = %q, %v", got, err)
	}

	// Crash one write earlier — the superblock's first copy tears, no
	// copy completed — and recovery rolls the force back: entry gone.
	vol3 := NewMemVolume(128)
	vol3.ArmGlobalCrashAtWrite(w - 1)
	site4, err := CreateSite(vol3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := site4.Log().ForceWrite([]byte("x")); !errors.Is(err, stable.ErrCrashed) {
		t.Fatalf("armed write: err = %v, want ErrCrashed", err)
	}
	vol3.Crash()
	vol3.Restart()
	site5, err := OpenSite(vol3)
	if err != nil {
		t.Fatal(err)
	}
	if site5.Log().Top() != NoLSN {
		t.Fatalf("crash before any superblock copy: top %v, want none (roll back)", site5.Log().Top())
	}
}

// TestEachDevicePairOrder: deterministic enumeration, root first then
// generations ascending.
func TestEachDevicePairOrder(t *testing.T) {
	vol := NewMemVolume(128)
	if _, err := CreateSite(vol); err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Generation(3); err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Generation(2); err != nil {
		t.Fatal(err)
	}
	var labels []string
	vol.EachDevicePair(func(label string, a, b *stable.MemDevice) {
		if a == nil || b == nil {
			t.Fatalf("nil device for %s", label)
		}
		labels = append(labels, label)
	})
	want := []string{"root", "gen1", "gen2", "gen3"}
	if fmt.Sprint(labels) != fmt.Sprint(want) {
		t.Fatalf("EachDevicePair order = %v, want %v", labels, want)
	}
}
