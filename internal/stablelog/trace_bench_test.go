package stablelog

import (
	"testing"

	"repro/internal/obs"
)

// benchAppendForce measures the log's append + synchronous-force path
// with the given tracer installed. BenchmarkTraceOff is the CI overhead
// guard for the nil-tracer fast path: its ns/op and allocs/op are the
// baseline that BenchmarkTraceOn (a live Stats sink) is compared
// against — tracing must stay a per-event branch, not a tax on
// untraced runs.
func benchAppendForce(b *testing.B, tr obs.Tracer) {
	l, _, _ := freshLog(b, 4096)
	l.SetSynchronousForces(true)
	l.SetTracer(tr)
	payload := make([]byte, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn, err := l.Write(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.ForceTo(lsn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceOff(b *testing.B) { benchAppendForce(b, nil) }

func BenchmarkTraceOn(b *testing.B) { benchAppendForce(b, &obs.Stats{}) }
