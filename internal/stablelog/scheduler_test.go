package stablelog

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/stable"
)

// Entries appended before any waiter arrives are covered by a single
// shared force: the first ForceTo leads one device force whose snapshot
// includes every entry, so the others either ride its round or find
// their entry already durable. Exactly one force happens.
func TestForceToCoalescesAppendedPrefix(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	const n = 16
	lsns := make([]LSN, n)
	for i := range lsns {
		lsn, err := l.Write([]byte(fmt.Sprintf("entry-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.ForceTo(lsns[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ForceTo(%v): %v", lsns[i], err)
		}
	}
	if got := l.Forces(); got != 1 {
		t.Fatalf("Forces() = %d, want 1 (one shared round covers the whole prefix)", got)
	}
	if top := l.Top(); top != lsns[n-1] {
		t.Fatalf("Top() = %v, want %v", top, lsns[n-1])
	}
	leads, _ := l.SchedulerStats()
	if leads != 1 {
		t.Fatalf("leads = %d, want 1", leads)
	}
}

// ForceTo on an entry that is already durable performs no device work.
func TestForceToAlreadyDurable(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	lsn, err := l.ForceWrite([]byte("outcome"))
	if err != nil {
		t.Fatal(err)
	}
	before := l.Forces()
	for i := 0; i < 3; i++ {
		if err := l.ForceTo(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Forces(); got != before {
		t.Fatalf("Forces() = %d after covered ForceTo, want %d", got, before)
	}
	if err := l.ForceTo(NoLSN); err != nil {
		t.Fatalf("ForceTo(NoLSN) = %v, want nil", err)
	}
}

// Synchronous mode bypasses coalescing: every uncovered ForceTo runs
// its own force, and the scheduler counters stay untouched — the mode
// the crash sweep pins so write counts are a pure function of the call
// sequence.
func TestForceToSynchronousMode(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	l.SetSynchronousForces(true)
	for i := 0; i < 3; i++ {
		lsn, err := l.Write([]byte(fmt.Sprintf("sync-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.ForceTo(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Forces(); got != 3 {
		t.Fatalf("Forces() = %d in synchronous mode, want 3", got)
	}
	leads, rides := l.SchedulerStats()
	if leads != 0 || rides != 0 {
		t.Fatalf("scheduler stats = (%d, %d) in synchronous mode, want (0, 0)", leads, rides)
	}
}

// A force error reaches the ForceTo caller; the entry is not durable.
func TestForceToPropagatesError(t *testing.T) {
	a := stable.NewMemDevice(128, nil)
	b := stable.NewMemDevice(128, nil)
	store, err := stable.NewStore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	l := New(store)
	lsn, err := l.Write([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	crash := stable.FaultFunc(func(int) stable.Fault { return stable.FaultCrash })
	a.SetPlan(crash)
	b.SetPlan(crash)
	if err := l.ForceTo(lsn); err == nil {
		t.Fatal("ForceTo succeeded with both devices crashing")
	}
	a.Restart(nil)
	b.Restart(nil)
	if err := l.ForceTo(lsn); err != nil {
		t.Fatalf("ForceTo after devices restarted: %v", err)
	}
}

// Concurrent writers each appending and awaiting their own entry: all
// entries become durable, the log stays structurally intact across a
// reopen, and the shared rounds do no more forces than writers (and
// with contention, typically far fewer).
func TestConcurrentForceWriteStress(t *testing.T) {
	l, a, b := freshLog(t, 128)
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Write([]byte(fmt.Sprintf("w%02d-%03d", w, i)))
				if err != nil {
					errCh <- err
					return
				}
				if err := l.ForceTo(lsn); err != nil {
					errCh <- err
					return
				}
				if !l.covered(lsn) {
					errCh <- fmt.Errorf("entry %v not durable after ForceTo", lsn)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	total := writers * perWriter
	if got := l.Entries(); got != total {
		t.Fatalf("Entries() = %d, want %d", got, total)
	}
	if got := l.Forces(); got > total {
		t.Fatalf("Forces() = %d > %d entries: scheduler forced more than once per wait", got, total)
	}
	// Every entry survives a crash (reopen reads the forced prefix).
	re := reopen(t, a, b)
	if got := re.Entries(); got != total {
		t.Fatalf("reopened Entries() = %d, want %d", got, total)
	}
	if re.Top() != l.Top() {
		t.Fatalf("reopened Top() = %v, want %v", re.Top(), l.Top())
	}
}

// The site's synchronous-force pin survives the housekeeping generation
// switch: logs created through NewLog inherit it.
func TestSiteSyncForceSurvivesSwitch(t *testing.T) {
	vol := NewMemVolume(128)
	site, err := CreateSite(vol)
	if err != nil {
		t.Fatal(err)
	}
	site.SetSynchronousForces(true)
	newLog, gen, err := site.NewLog()
	if err != nil {
		t.Fatal(err)
	}
	if err := newLog.Force(); err != nil {
		t.Fatal(err)
	}
	if err := site.Switch(newLog, gen); err != nil {
		t.Fatal(err)
	}
	cur := site.Log()
	lsn, err := cur.Write([]byte("post-switch outcome"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.ForceTo(lsn); err != nil {
		t.Fatal(err)
	}
	leads, rides := cur.SchedulerStats()
	if leads != 0 || rides != 0 {
		t.Fatalf("post-switch log ran in group mode (stats %d, %d); syncForce not inherited", leads, rides)
	}
}

// TestForceScheduleProperty drives the log through seeded random
// Write / ForceTo / crash interleavings and checks every state against
// a model log: a force round covers the whole buffered suffix (the
// covered-LSN snapshot), a crash erases exactly the unforced entries,
// survivors read back byte-identical in order, and — under a serial
// schedule — the device does exactly one force per uncovered ForceTo.
// Even seeds run the group-commit scheduler, odd seeds pin synchronous
// forces; the durable behavior must be identical.
func TestForceScheduleProperty(t *testing.T) {
	type entry struct {
		lsn     LSN
		payload string
	}
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			l, a, b := freshLog(t, 128)
			sync := seed%2 == 1
			l.SetSynchronousForces(sync)

			var model []entry // every live entry; model[:durable] survives a crash
			durable := 0      // model watermark advanced by force rounds
			forces := 0       // uncovered ForceTo calls on the current log instance

			verify := func(what string) {
				t.Helper()
				if got := l.Entries(); got != len(model) {
					t.Fatalf("%s: Entries() = %d, want %d", what, got, len(model))
				}
				for i, e := range model {
					got, err := l.Read(e.lsn)
					if err != nil {
						t.Fatalf("%s: Read(entry %d @ %v): %v", what, i, e.lsn, err)
					}
					if string(got) != e.payload {
						t.Fatalf("%s: entry %d = %q, want %q", what, i, got, e.payload)
					}
				}
			}
			crash := func() {
				t.Helper()
				if got := l.Forces(); got != forces {
					t.Fatalf("Forces() = %d, want %d (one device force per uncovered ForceTo)", got, forces)
				}
				l = reopen(t, a, b)
				l.SetSynchronousForces(sync)
				model = model[:durable]
				forces = 0
				verify("after crash")
			}

			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 6:
					p := fmt.Sprintf("s%d-e%d-%x", seed, len(model), rng.Int63())
					lsn, err := l.Write([]byte(p))
					if err != nil {
						t.Fatalf("Write: %v", err)
					}
					model = append(model, entry{lsn, p})
				case op < 9:
					if len(model) == 0 {
						continue
					}
					i := rng.Intn(len(model))
					if err := l.ForceTo(model[i].lsn); err != nil {
						t.Fatalf("ForceTo: %v", err)
					}
					if i >= durable {
						// The round snapshots the whole buffer, so every
						// entry written so far is now durable.
						forces++
						durable = len(model)
					}
				default:
					crash()
				}
			}
			crash()
			verify("final")
			// Backward iteration sees exactly the surviving entries,
			// newest first.
			i := len(model)
			err := l.ReadBackward(l.Top(), func(lsn LSN, payload []byte) bool {
				i--
				if i < 0 {
					t.Fatal("ReadBackward yielded more entries than the model holds")
				}
				if lsn != model[i].lsn || string(payload) != model[i].payload {
					t.Fatalf("ReadBackward entry %d = (%v, %q), want (%v, %q)",
						i, lsn, payload, model[i].lsn, model[i].payload)
				}
				return true
			})
			if err != nil {
				t.Fatalf("ReadBackward: %v", err)
			}
			if i != 0 {
				t.Fatalf("ReadBackward stopped with %d entries unseen", i)
			}
		})
	}
}

// Reads and backward iteration proceed while a force is publishing: the
// race detector covers the interleavings; the assertions check that a
// reader never observes a torn frame.
func TestReadDuringForce(t *testing.T) {
	l, _, _ := freshLog(t, 128)
	lsns := make([]LSN, 0, 64)
	for i := 0; i < 64; i++ {
		lsn, err := l.Write([]byte(fmt.Sprintf("frame-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	readErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for _, lsn := range lsns {
			payload, err := l.Read(lsn)
			if err != nil {
				readErr <- fmt.Errorf("read %v during force: %w", lsn, err)
				return
			}
			if len(payload) == 0 {
				readErr <- errors.New("empty payload during force")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		if err := l.ForceTo(lsns[len(lsns)-1]); err != nil {
			readErr <- err
		}
	}()
	wg.Wait()
	close(readErr)
	for err := range readErr {
		t.Fatal(err)
	}
}
