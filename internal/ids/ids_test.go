package ids

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestUIDGeneratorSequence(t *testing.T) {
	g := NewUIDGenerator(StableVarsUID)
	if got := g.Next(); got != 2 {
		t.Fatalf("first UID after StableVarsUID = %v, want O2", got)
	}
	if got := g.Next(); got != 3 {
		t.Fatalf("second UID = %v, want O3", got)
	}
	if got := g.Last(); got != 3 {
		t.Fatalf("Last() = %v, want O3", got)
	}
}

func TestUIDGeneratorResetNeverMovesBackward(t *testing.T) {
	g := NewUIDGenerator(0)
	for i := 0; i < 10; i++ {
		g.Next()
	}
	g.Reset(5) // below current 10: must be a no-op
	if got := g.Next(); got != 11 {
		t.Fatalf("after Reset(5), Next() = %v, want O11", got)
	}
	g.Reset(100)
	if got := g.Next(); got != 101 {
		t.Fatalf("after Reset(100), Next() = %v, want O101", got)
	}
}

func TestUIDGeneratorConcurrentUnique(t *testing.T) {
	g := NewUIDGenerator(0)
	const workers, per = 8, 1000
	var mu sync.Mutex
	seen := make(map[UID]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]UID, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, u := range local {
				if seen[u] {
					t.Errorf("duplicate UID %v", u)
				}
				seen[u] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("got %d unique UIDs, want %d", len(seen), workers*per)
	}
}

func TestUIDGeneratorResetProperty(t *testing.T) {
	// Property: after Reset(r) on a generator whose counter is c,
	// Next() > max(c, r) and UIDs remain strictly increasing.
	f := func(c uint16, r uint16) bool {
		g := NewUIDGenerator(UID(c))
		g.Reset(UID(r))
		n1 := g.Next()
		n2 := g.Next()
		lo := UID(c)
		if UID(r) > lo {
			lo = UID(r)
		}
		return n1 == lo+1 && n2 == lo+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActionIDGenerator(t *testing.T) {
	g := NewActionIDGenerator(GuardianID(7))
	a := g.Next()
	b := g.Next()
	if a.Coordinator != 7 || b.Coordinator != 7 {
		t.Fatalf("coordinator not embedded: %v %v", a, b)
	}
	if a == b {
		t.Fatalf("action ids not unique: %v", a)
	}
	if a.IsZero() {
		t.Fatal("generated action id reported as zero")
	}
	if !NoAction.IsZero() {
		t.Fatal("NoAction not reported as zero")
	}
}

func TestStringForms(t *testing.T) {
	if UID(42).String() != "O42" {
		t.Errorf("UID string = %q", UID(42).String())
	}
	if GuardianID(3).String() != "G3" {
		t.Errorf("GuardianID string = %q", GuardianID(3).String())
	}
	a := ActionID{Coordinator: 3, Seq: 9}
	if a.String() != "T3.9" {
		t.Errorf("ActionID string = %q", a.String())
	}
	if NoAction.String() != "T<none>" {
		t.Errorf("NoAction string = %q", NoAction.String())
	}
}
