// Package shadow implements the shadowed-objects organization of
// stable storage described in thesis §1.2.1 (Figure 1-1), as the
// baseline the hybrid log is compared against.
//
// Storage is organized as a version area plus a map. New object
// versions are written to the version area without overwriting the old
// versions; the map associates each object UID with the location of its
// current version. When an action commits, a complete new map is
// written and installed "in one atomic step" (a root-page switch), so
// every commit pays a cost proportional to the number of live objects —
// the scheme's characteristic slow write. After a crash, recovery reads
// the root page, the map, and only the short suffix of version-area
// records written after the map (the distributed-commit intentions of
// §1.2.1: "if the data an action manipulates is distributed ... a log
// is also required"), so recovery is fast.
//
// The version area is itself a stable log (append-only), and the map is
// appended to it as an ordinary entry; installing a map writes its
// address to the root page. Mutex objects follow Argus semantics: their
// prepared versions are installed at the next map write and restored
// from the intentions suffix meanwhile.
//
// Shadowing does not participate in group commit: each outcome rewrites
// and installs the whole map, and the root-page switch serializes with
// the map write, so there is no append-only suffix that concurrent
// committers could cover with one shared force. All forces here stay
// synchronous — which is exactly the §1.2.1 write cost the log
// organizations are measured against.
package shadow

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/stable"
	"repro/internal/stablelog"
	"repro/internal/value"
)

// record kinds in the version area.
const (
	recVersion byte = iota + 1
	recPrepared
	recAborted
	recCommitting
	recDone
	recMap
)

// mapEntry is one row of the object map.
type mapEntry struct {
	Addr stablelog.LSN
	Kind object.Kind
}

// install is one pending map update from a prepared action.
type install struct {
	uid  ids.UID
	addr stablelog.LSN
	kind object.Kind
}

// Store is one guardian's shadow-organized stable storage.
type Store struct {
	mu   sync.Mutex
	vs   *stablelog.Log // version area
	root *stable.Store  // root page: address of the installed map
	heap *object.Heap
	as   *object.AccessSet
	pat  *object.PAT

	table   map[ids.UID]mapEntry // the installed map (volatile copy)
	pending map[ids.ActionID][]install

	// MapWrites counts full map writes (the cost that makes shadowing
	// slow, §1.2.1: "rewriting the map at every action commit ... could
	// be expensive").
	MapWrites int

	tr obs.Tracer // guarded by mu
}

// New creates a shadow store over a fresh version-area log and root
// store.
func New(vs *stablelog.Log, root *stable.Store, heap *object.Heap) *Store {
	return &Store{
		vs:      vs,
		root:    root,
		heap:    heap,
		as:      object.NewAccessSet(),
		pat:     object.NewPAT(),
		table:   make(map[ids.UID]mapEntry),
		pending: make(map[ids.ActionID][]install),
	}
}

// SetTracer installs (or, with nil, removes) the store's event tracer
// and forwards it to the version-area log. Shadowing holds the store
// lock across its forces by design — each outcome rewrites and installs
// the whole map, so there is no split append/await path to bracket —
// and therefore emits no crit.enter/crit.exit events: the checker's
// lock-discipline rule deliberately does not apply here.
func (s *Store) SetTracer(tr obs.Tracer) {
	s.mu.Lock()
	s.tr = tr
	s.mu.Unlock()
	s.vs.SetTracer(tr)
}

// emitOutcome reports one outcome record that has already been forced;
// callers hold s.mu. Append and durable are emitted back to back
// because shadowing has no window between them: ForceWrite returns only
// after the force covers the record.
func (s *Store) emitOutcome(code obs.OutcomeKind, aid ids.ActionID, lsn stablelog.LSN) {
	if s.tr == nil {
		return
	}
	s.tr.Emit(obs.Event{Kind: obs.KindOutcomeAppend, Code: uint8(code), AID: aid, LSN: uint64(lsn)})
	s.tr.Emit(obs.Event{Kind: obs.KindOutcomeDurable, Code: uint8(code), AID: aid, LSN: uint64(lsn)})
}

// Heap returns the volatile heap the store serves.
func (s *Store) Heap() *object.Heap { return s.heap }

// PAT returns the prepared actions table.
func (s *Store) PAT() *object.PAT { return s.pat }

// AS returns the accessibility set.
func (s *Store) AS() *object.AccessSet { return s.as }

// Log returns the version-area log (for size accounting in benchmarks).
func (s *Store) Log() *stablelog.Log { return s.vs }

// Prepare writes new versions of the accessible objects in mos to the
// version area, then a prepared record listing them, and forces both.
// The map is untouched: the versions shadow the installed ones.
func (s *Store) Prepare(aid ids.ActionID, mos object.MOS) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	work := make([]object.Recoverable, 0, len(mos))
	queued := make(map[ids.UID]bool)
	if s.as.Len() == 0 {
		if rootObj, ok := s.heap.StableVars(); ok {
			work = append(work, rootObj)
			queued[rootObj.UID()] = true
		}
	}
	for _, obj := range mos {
		if s.as.Contains(obj.UID()) && !queued[obj.UID()] {
			work = append(work, obj)
			queued[obj.UID()] = true
		}
	}
	var installs []install
	for len(work) > 0 {
		obj := work[0]
		work = work[1:]
		visit := func(ref value.Obj) {
			nobj, ok := ref.(object.Recoverable)
			if !ok || queued[nobj.UID()] || s.as.Contains(nobj.UID()) {
				return
			}
			queued[nobj.UID()] = true
			work = append(work, nobj)
		}
		var flat []byte
		var kind object.Kind
		switch o := obj.(type) {
		case *object.Atomic:
			// For simplicity the shadow baseline writes the version
			// visible to the preparing action; a newly accessible
			// object's single version is its base.
			flat = o.SnapshotFor(aid, visit)
			kind = object.KindAtomic
		case *object.Mutex:
			flat = o.Snapshot(visit)
			kind = object.KindMutex
		default:
			return fmt.Errorf("shadow: unknown recoverable %T", obj)
		}
		addr, err := s.vs.Write(encodeVersion(flat, kind))
		if err != nil {
			return err
		}
		installs = append(installs, install{uid: obj.UID(), addr: addr, kind: kind})
		s.as.Add(obj.UID())
	}
	lsn, err := s.vs.ForceWrite(encodePrepared(aid, installs))
	if err != nil {
		return err
	}
	s.pending[aid] = installs
	s.pat.Add(aid)
	s.emitOutcome(obs.OutcomePrepared, aid, lsn)
	return nil
}

// Commit installs the action's shadowed versions: the map is updated,
// written out in full to the version area, and switched to by a single
// root-page write (§1.2.1: "making a new map ..., writing the map to
// stable storage, and then switching from the old map to the new map in
// one atomic step").
func (s *Store) Commit(aid ids.ActionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, in := range s.pending[aid] {
		s.table[in.uid] = mapEntry{Addr: in.addr, Kind: in.kind}
	}
	delete(s.pending, aid)
	s.pat.Remove(aid)
	lsn, err := s.writeMapLocked()
	if err != nil {
		return err
	}
	s.emitOutcome(obs.OutcomeCommitted, aid, lsn)
	return nil
}

// Abort discards the shadowed versions; atomic versions die, but mutex
// versions written by this prepared action must survive (§2.4.2), so
// they are installed into the map.
func (s *Store) Abort(aid ids.ActionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var mutexInstalled bool
	for _, in := range s.pending[aid] {
		if in.kind == object.KindMutex {
			s.table[in.uid] = mapEntry{Addr: in.addr, Kind: in.kind}
			mutexInstalled = true
		}
	}
	delete(s.pending, aid)
	s.pat.Remove(aid)
	var lsn stablelog.LSN
	var err error
	if mutexInstalled {
		lsn, err = s.writeMapLocked()
	} else {
		lsn, err = s.vs.ForceWrite(encodeOutcome(recAborted, aid, nil))
	}
	if err != nil {
		return err
	}
	s.emitOutcome(obs.OutcomeAborted, aid, lsn)
	return nil
}

// Committing records the coordinator's commit decision.
func (s *Store) Committing(aid ids.ActionID, gids []ids.GuardianID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lsn, err := s.vs.ForceWrite(encodeOutcome(recCommitting, aid, gids))
	if err != nil {
		return err
	}
	s.emitOutcome(obs.OutcomeCommitting, aid, lsn)
	return nil
}

// Done records the end of two-phase commit.
func (s *Store) Done(aid ids.ActionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lsn, err := s.vs.ForceWrite(encodeOutcome(recDone, aid, nil))
	if err != nil {
		return err
	}
	s.emitOutcome(obs.OutcomeDone, aid, lsn)
	return nil
}

// writeMapLocked serializes the whole map, appends it to the version
// area, forces it, and atomically installs it via the root page. It
// returns the map record's address.
func (s *Store) writeMapLocked() (stablelog.LSN, error) {
	lsn, err := s.vs.ForceWrite(encodeMap(s.table))
	if err != nil {
		return stablelog.NoLSN, err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(lsn))
	if err := s.root.WritePage(0, buf[:]); err != nil {
		return stablelog.NoLSN, err
	}
	s.MapWrites++
	return lsn, nil
}

// TrimAS trims the accessibility set (§3.3.3.2), as in the log
// schemes.
func (s *Store) TrimAS() {
	fresh := s.heap.AccessibleSet()
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh.Intersect(s.as)
	s.as.ReplaceWith(fresh)
}

// MapSize returns the number of installed objects.
func (s *Store) MapSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

// Tables is the result of shadow recovery.
type Tables struct {
	Heap *object.Heap
	AS   *object.AccessSet
	PAT  *object.PAT
	// Prepared lists actions whose versions are shadowed but whose
	// verdict is unknown.
	Prepared map[ids.ActionID]bool
	// Committing/Done mirror the coordinator tables.
	Committing map[ids.ActionID][]ids.GuardianID
	Done       map[ids.ActionID]bool
	// EntriesRead counts version-area records read during recovery: the
	// map plus the post-map suffix only.
	EntriesRead int
	MaxUID      ids.UID
}

// Recover reconstructs the stable state: read the root page, the map it
// points at, every version the map references, and the intentions
// suffix after the map.
func Recover(vs *stablelog.Log, root *stable.Store) (*Tables, *Store, error) {
	t := &Tables{
		Prepared:   make(map[ids.ActionID]bool),
		Committing: make(map[ids.ActionID][]ids.GuardianID),
		Done:       make(map[ids.ActionID]bool),
	}
	heap := object.NewHeap()

	rootPage, err := root.ReadPage(0)
	if err != nil {
		return nil, nil, err
	}
	table := make(map[ids.UID]mapEntry)
	mapLSN := stablelog.NoLSN
	if len(rootPage) >= 8 {
		mapLSN = stablelog.LSN(binary.LittleEndian.Uint64(rootPage[:8]))
		payload, err := vs.Read(mapLSN)
		if err != nil {
			return nil, nil, fmt.Errorf("shadow: installed map unreadable: %w", err)
		}
		t.EntriesRead++
		table, err = decodeMap(payload)
		if err != nil {
			return nil, nil, err
		}
	}

	// Scan the suffix after the map for intentions: prepared records
	// whose verdict never arrived, plus coordinator records. (Read
	// backward until we hit the map entry.)
	type prep struct {
		aid      ids.ActionID
		installs []install
	}
	var suffix []prep
	aborted := make(map[ids.ActionID]bool)
	err = vs.ReadBackward(vs.Top(), func(lsn stablelog.LSN, payload []byte) bool {
		if lsn == mapLSN {
			return false
		}
		if len(payload) == 0 {
			return true
		}
		t.EntriesRead++
		switch payload[0] {
		case recPrepared:
			aid, installs, err := decodePrepared(payload)
			if err == nil && !aborted[aid] {
				suffix = append(suffix, prep{aid: aid, installs: installs})
			}
		case recAborted:
			aid, _, err := decodeOutcome(payload)
			if err == nil {
				aborted[aid] = true
			}
		case recCommitting:
			aid, gids, err := decodeOutcome(payload)
			if err == nil {
				if _, known := t.Done[aid]; !known {
					if _, dup := t.Committing[aid]; !dup {
						t.Committing[aid] = gids
					}
				}
			}
		case recDone:
			aid, _, err := decodeOutcome(payload)
			if err == nil {
				t.Done[aid] = true
				delete(t.Committing, aid)
			}
		case recMap:
			// A newer map that was written but never installed (crash
			// between the map force and the root-page write): its
			// transaction will be replayed from the prepared records,
			// or re-committed by the resumed guardian; skip it.
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}

	// Materialize installed objects.
	restored := make(map[ids.UID]object.Recoverable)
	for uid, me := range table {
		v, err := readVersion(vs, me.Addr, t)
		if err != nil {
			return nil, nil, err
		}
		var obj object.Recoverable
		if me.Kind == object.KindAtomic {
			obj = object.RestoreAtomic(uid, v, nil, ids.ActionID{})
		} else {
			obj = object.NewMutex(uid, v)
		}
		restored[uid] = obj
		heap.Register(obj)
	}
	// Apply prepared intentions: atomic versions become write-locked
	// current versions; mutex versions are installed outright.
	for i := len(suffix) - 1; i >= 0; i-- {
		p := suffix[i]
		t.Prepared[p.aid] = true
		for _, in := range p.installs {
			v, err := readVersion(vs, in.addr, t)
			if err != nil {
				return nil, nil, err
			}
			switch in.kind {
			case object.KindMutex:
				if m, ok := restored[in.uid].(*object.Mutex); ok {
					m.SetCurrent(v)
				} else if _, ok := restored[in.uid]; !ok {
					m := object.NewMutex(in.uid, v)
					restored[in.uid] = m
					heap.Register(m)
				}
			case object.KindAtomic:
				if a, ok := restored[in.uid].(*object.Atomic); ok {
					if a.Writer().IsZero() {
						if err := restoreCurrent(a, v, p.aid); err != nil {
							return nil, nil, err
						}
					}
				} else if _, ok := restored[in.uid]; !ok {
					a := object.RestoreAtomic(in.uid, nil, v, p.aid)
					restored[in.uid] = a
					heap.Register(a)
				}
			}
		}
	}

	// Resolve references.
	lookup := func(u ids.UID) (value.Obj, bool) {
		o, ok := heap.Lookup(u)
		if !ok {
			return nil, false
		}
		return o, true
	}
	var maxUID ids.UID
	for uid, obj := range restored {
		if uid > maxUID {
			maxUID = uid
		}
		switch x := obj.(type) {
		case *object.Atomic:
			if b := x.Base(); b != nil {
				nb, err := value.ResolveRefs(b, lookup)
				if err != nil {
					return nil, nil, err
				}
				x.SetBase(nb)
			}
			if c, ok := x.Current(); ok && c != nil {
				nc, err := value.ResolveRefs(c, lookup)
				if err != nil {
					return nil, nil, err
				}
				if err := x.Replace(x.Writer(), nc); err != nil {
					return nil, nil, err
				}
			}
		case *object.Mutex:
			if c := x.Current(); c != nil {
				nv, err := value.ResolveRefs(c, lookup)
				if err != nil {
					return nil, nil, err
				}
				x.SetCurrent(nv)
			}
		}
	}

	t.Heap = heap
	t.AS = heap.AccessibleSet()
	t.PAT = object.NewPAT()
	t.MaxUID = maxUID

	// Build a resumed store.
	s := New(vs, root, heap)
	s.table = table
	s.as = t.AS
	for aid := range t.Prepared {
		t.PAT.Add(aid)
		s.pat.Add(aid)
	}
	for i := len(suffix) - 1; i >= 0; i-- {
		s.pending[suffix[i].aid] = suffix[i].installs
	}
	return t, s, nil
}

// restoreCurrent grants aid a write lock on a restored atomic and sets
// its current version.
func restoreCurrent(a *object.Atomic, v value.Value, aid ids.ActionID) error {
	if err := a.AcquireWrite(aid); err != nil {
		return err
	}
	return a.Replace(aid, v)
}

func readVersion(vs *stablelog.Log, addr stablelog.LSN, t *Tables) (value.Value, error) {
	payload, err := vs.Read(addr)
	if err != nil {
		return nil, fmt.Errorf("shadow: version at %v: %w", addr, err)
	}
	t.EntriesRead++
	flat, _, err := decodeVersion(payload)
	if err != nil {
		return nil, err
	}
	return value.Unflatten(flat)
}

// --- record codecs -----------------------------------------------------

func encodeVersion(flat []byte, kind object.Kind) []byte {
	out := make([]byte, 0, len(flat)+2)
	out = append(out, recVersion, byte(kind))
	return append(out, flat...)
}

func decodeVersion(p []byte) ([]byte, object.Kind, error) {
	if len(p) < 2 || p[0] != recVersion {
		return nil, 0, fmt.Errorf("shadow: bad version record")
	}
	return p[2:], object.Kind(p[1]), nil
}

func encodePrepared(aid ids.ActionID, installs []install) []byte {
	out := []byte{recPrepared}
	out = binary.AppendUvarint(out, uint64(aid.Coordinator))
	out = binary.AppendUvarint(out, aid.Seq)
	out = binary.AppendUvarint(out, uint64(len(installs)))
	for _, in := range installs {
		out = binary.AppendUvarint(out, uint64(in.uid))
		out = binary.AppendUvarint(out, uint64(in.addr))
		out = append(out, byte(in.kind))
	}
	return out
}

func decodePrepared(p []byte) (ids.ActionID, []install, error) {
	if len(p) < 1 || p[0] != recPrepared {
		return ids.ActionID{}, nil, fmt.Errorf("shadow: bad prepared record")
	}
	buf := p[1:]
	var aid ids.ActionID
	c, n := binary.Uvarint(buf)
	if n <= 0 {
		return aid, nil, fmt.Errorf("shadow: bad prepared record")
	}
	buf = buf[n:]
	aid.Coordinator = ids.GuardianID(c)
	sq, n := binary.Uvarint(buf)
	if n <= 0 {
		return aid, nil, fmt.Errorf("shadow: bad prepared record")
	}
	buf = buf[n:]
	aid.Seq = sq
	cnt, n := binary.Uvarint(buf)
	if n <= 0 {
		return aid, nil, fmt.Errorf("shadow: bad prepared record")
	}
	buf = buf[n:]
	installs := make([]install, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		u, n := binary.Uvarint(buf)
		if n <= 0 {
			return aid, nil, fmt.Errorf("shadow: bad prepared record")
		}
		buf = buf[n:]
		a, n := binary.Uvarint(buf)
		if n <= 0 {
			return aid, nil, fmt.Errorf("shadow: bad prepared record")
		}
		buf = buf[n:]
		if len(buf) < 1 {
			return aid, nil, fmt.Errorf("shadow: bad prepared record")
		}
		k := object.Kind(buf[0])
		buf = buf[1:]
		installs = append(installs, install{uid: ids.UID(u), addr: stablelog.LSN(a), kind: k})
	}
	return aid, installs, nil
}

func encodeOutcome(kind byte, aid ids.ActionID, gids []ids.GuardianID) []byte {
	out := []byte{kind}
	out = binary.AppendUvarint(out, uint64(aid.Coordinator))
	out = binary.AppendUvarint(out, aid.Seq)
	out = binary.AppendUvarint(out, uint64(len(gids)))
	for _, g := range gids {
		out = binary.AppendUvarint(out, uint64(g))
	}
	return out
}

func decodeOutcome(p []byte) (ids.ActionID, []ids.GuardianID, error) {
	if len(p) < 1 {
		return ids.ActionID{}, nil, fmt.Errorf("shadow: empty record")
	}
	buf := p[1:]
	var aid ids.ActionID
	c, n := binary.Uvarint(buf)
	if n <= 0 {
		return aid, nil, fmt.Errorf("shadow: bad outcome record")
	}
	buf = buf[n:]
	aid.Coordinator = ids.GuardianID(c)
	sq, n := binary.Uvarint(buf)
	if n <= 0 {
		return aid, nil, fmt.Errorf("shadow: bad outcome record")
	}
	buf = buf[n:]
	aid.Seq = sq
	cnt, n := binary.Uvarint(buf)
	if n <= 0 {
		return aid, nil, fmt.Errorf("shadow: bad outcome record")
	}
	buf = buf[n:]
	var gids []ids.GuardianID
	for i := uint64(0); i < cnt; i++ {
		g, n := binary.Uvarint(buf)
		if n <= 0 {
			return aid, nil, fmt.Errorf("shadow: bad outcome record")
		}
		buf = buf[n:]
		gids = append(gids, ids.GuardianID(g))
	}
	return aid, gids, nil
}

func encodeMap(table map[ids.UID]mapEntry) []byte {
	uids := make([]ids.UID, 0, len(table))
	for u := range table {
		uids = append(uids, u)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	out := []byte{recMap}
	out = binary.AppendUvarint(out, uint64(len(uids)))
	for _, u := range uids {
		me := table[u]
		out = binary.AppendUvarint(out, uint64(u))
		out = binary.AppendUvarint(out, uint64(me.Addr))
		out = append(out, byte(me.Kind))
	}
	return out
}

func decodeMap(p []byte) (map[ids.UID]mapEntry, error) {
	if len(p) < 1 || p[0] != recMap {
		return nil, fmt.Errorf("shadow: bad map record")
	}
	buf := p[1:]
	cnt, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("shadow: bad map record")
	}
	buf = buf[n:]
	table := make(map[ids.UID]mapEntry, cnt)
	for i := uint64(0); i < cnt; i++ {
		u, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("shadow: bad map record")
		}
		buf = buf[n:]
		a, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("shadow: bad map record")
		}
		buf = buf[n:]
		if len(buf) < 1 {
			return nil, fmt.Errorf("shadow: bad map record")
		}
		table[ids.UID(u)] = mapEntry{Addr: stablelog.LSN(a), Kind: object.Kind(buf[0])}
		buf = buf[1:]
	}
	return table, nil
}
