package shadow

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/object"
	"repro/internal/stable"
	"repro/internal/stablelog"
	"repro/internal/value"
)

var (
	gP = ids.GuardianID(1)
)

type fixture struct {
	t     *testing.T
	devs  [4]*stable.MemDevice
	vs    *stablelog.Log
	root  *stable.Store
	heap  *object.Heap
	store *Store
	seq   uint64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{t: t}
	for i := range f.devs {
		f.devs[i] = stable.NewMemDevice(256, nil)
	}
	vsStore, err := stable.NewStore(f.devs[0], f.devs[1])
	if err != nil {
		t.Fatal(err)
	}
	root, err := stable.NewStore(f.devs[2], f.devs[3])
	if err != nil {
		t.Fatal(err)
	}
	f.vs = stablelog.New(vsStore)
	f.root = root
	f.heap = object.NewHeap()
	f.store = New(f.vs, root, f.heap)
	return f
}

func (f *fixture) action() ids.ActionID {
	f.seq++
	return ids.ActionID{Coordinator: gP, Seq: f.seq}
}

func (f *fixture) crashAndRecover() (*Tables, *Store) {
	f.t.Helper()
	for _, d := range f.devs {
		d.Crash()
		d.Restart(nil)
	}
	vsStore, err := stable.NewStore(f.devs[0], f.devs[1])
	if err != nil {
		f.t.Fatal(err)
	}
	if err := vsStore.Recover(); err != nil {
		f.t.Fatal(err)
	}
	root, err := stable.NewStore(f.devs[2], f.devs[3])
	if err != nil {
		f.t.Fatal(err)
	}
	if err := root.Recover(); err != nil {
		f.t.Fatal(err)
	}
	vs, err := stablelog.Open(vsStore)
	if err != nil {
		f.t.Fatal(err)
	}
	tables, store, err := Recover(vs, root)
	if err != nil {
		f.t.Fatal(err)
	}
	return tables, store
}

// seed creates root + one counter object and commits through the store.
func (f *fixture) seed() *object.Atomic {
	f.t.Helper()
	setup := f.action()
	counter := object.NewAtomic(2, value.Int(0), setup)
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("counter", value.Ref{Target: counter}), setup)
	f.heap.Register(root)
	f.heap.Register(counter)
	if err := f.store.Prepare(setup, object.MOS{}); err != nil {
		f.t.Fatal(err)
	}
	if err := f.store.Commit(setup); err != nil {
		f.t.Fatal(err)
	}
	root.Commit(setup)
	counter.Commit(setup)
	return counter
}

func (f *fixture) bump(counter *object.Atomic, to int64) {
	f.t.Helper()
	aid := f.action()
	if err := counter.AcquireWrite(aid); err != nil {
		f.t.Fatal(err)
	}
	counter.Replace(aid, value.Int(to))
	if err := f.store.Prepare(aid, object.MOS{counter}); err != nil {
		f.t.Fatal(err)
	}
	if err := f.store.Commit(aid); err != nil {
		f.t.Fatal(err)
	}
	counter.Commit(aid)
}

func getAtomic(t *testing.T, h *object.Heap, uid ids.UID) *object.Atomic {
	t.Helper()
	o, ok := h.Lookup(uid)
	if !ok {
		t.Fatalf("%v not restored", uid)
	}
	a, ok := o.(*object.Atomic)
	if !ok {
		t.Fatalf("%v is %T", uid, o)
	}
	return a
}

func TestCommitInstallsMap(t *testing.T) {
	f := newFixture(t)
	counter := f.seed()
	f.bump(counter, 7)
	if f.store.MapWrites != 2 {
		t.Fatalf("MapWrites = %d, want 2 (one per commit)", f.store.MapWrites)
	}
	tables, _ := f.crashAndRecover()
	got := getAtomic(t, tables.Heap, 2)
	if !value.Equal(got.Base(), value.Int(7)) {
		t.Fatalf("counter = %s, want 7", value.String(got.Base()))
	}
	// Root's reference resolved.
	rootObj, ok := tables.Heap.StableVars()
	if !ok {
		t.Fatal("stable vars lost")
	}
	ref := rootObj.Base().(*value.Record).Fields["counter"].(value.Ref)
	if ref.Target.UID() != 2 {
		t.Fatal("root reference wrong")
	}
}

func TestCrashBeforeCommitDiscards(t *testing.T) {
	f := newFixture(t)
	counter := f.seed()
	aid := f.action()
	if err := counter.AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	counter.Replace(aid, value.Int(99))
	if err := f.store.Prepare(aid, object.MOS{counter}); err != nil {
		t.Fatal(err)
	}
	// Crash before Commit: the map still points at the old version, but
	// the prepared intention must be recovered (write-locked current).
	tables, _ := f.crashAndRecover()
	got := getAtomic(t, tables.Heap, 2)
	if !value.Equal(got.Base(), value.Int(0)) {
		t.Fatalf("installed version = %s, want 0", value.String(got.Base()))
	}
	if !tables.Prepared[aid] {
		t.Fatalf("prepared action lost: %v", tables.Prepared)
	}
	if got.Writer() != aid {
		t.Fatalf("writer = %v, want %v", got.Writer(), aid)
	}
	if cur, ok := got.Current(); !ok || !value.Equal(cur, value.Int(99)) {
		t.Fatalf("current = %v, want 99", cur)
	}
}

func TestAbortedIntentionDiscarded(t *testing.T) {
	f := newFixture(t)
	counter := f.seed()
	aid := f.action()
	if err := counter.AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	counter.Replace(aid, value.Int(99))
	if err := f.store.Prepare(aid, object.MOS{counter}); err != nil {
		t.Fatal(err)
	}
	if err := f.store.Abort(aid); err != nil {
		t.Fatal(err)
	}
	counter.Abort(aid)
	tables, _ := f.crashAndRecover()
	got := getAtomic(t, tables.Heap, 2)
	if !value.Equal(got.Base(), value.Int(0)) {
		t.Fatalf("counter = %s, want 0", value.String(got.Base()))
	}
	if len(tables.Prepared) != 0 {
		t.Fatalf("Prepared = %v, want empty", tables.Prepared)
	}
	if !got.Writer().IsZero() {
		t.Fatal("stale write lock after aborted intention")
	}
}

func TestMutexPreparedSurvivesAbort(t *testing.T) {
	f := newFixture(t)
	setup := f.action()
	m := object.NewMutex(2, value.Int(1))
	root := object.NewAtomic(ids.StableVarsUID,
		value.RecordOf("m", value.Ref{Target: m}), setup)
	f.heap.Register(root)
	f.heap.Register(m)
	if err := f.store.Prepare(setup, object.MOS{}); err != nil {
		t.Fatal(err)
	}
	f.store.Commit(setup)
	root.Commit(setup)

	aid := f.action()
	m.Seize(aid, func(value.Value) value.Value { return value.Int(2) })
	if err := f.store.Prepare(aid, object.MOS{m}); err != nil {
		t.Fatal(err)
	}
	if err := f.store.Abort(aid); err != nil {
		t.Fatal(err)
	}
	tables, _ := f.crashAndRecover()
	mo, ok := tables.Heap.Lookup(2)
	if !ok {
		t.Fatal("mutex lost")
	}
	if !value.Equal(mo.(*object.Mutex).Current(), value.Int(2)) {
		t.Fatalf("mutex = %s, want prepared version 2", value.String(mo.(*object.Mutex).Current()))
	}
}

func TestRecoveryCostIndependentOfHistory(t *testing.T) {
	// The shadowing claim (§1.2.2): recovery is fast — it reads the map
	// and live versions, not the history.
	f := newFixture(t)
	counter := f.seed()
	for i := 0; i < 100; i++ {
		f.bump(counter, int64(i))
	}
	tables, _ := f.crashAndRecover()
	// map + 2 live versions + suffix (nothing) — far below the ~400
	// records written.
	if tables.EntriesRead > 5 {
		t.Fatalf("EntriesRead = %d, want small constant", tables.EntriesRead)
	}
	got := getAtomic(t, tables.Heap, 2)
	if !value.Equal(got.Base(), value.Int(99)) {
		t.Fatalf("counter = %s, want 99", value.String(got.Base()))
	}
}

func TestCrashBetweenMapWriteAndRootSwitch(t *testing.T) {
	// If the crash lands after the new map is forced but before the
	// root page is written, the old map remains installed and the
	// prepared intention is still pending — no torn state.
	f := newFixture(t)
	counter := f.seed()
	aid := f.action()
	if err := counter.AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	counter.Replace(aid, value.Int(5))
	if err := f.store.Prepare(aid, object.MOS{counter}); err != nil {
		t.Fatal(err)
	}
	// Simulate the partial commit: write the map but crash before the
	// root update by crashing the root devices only for writes.
	f.devs[2].Crash()
	f.devs[3].Crash()
	if err := f.store.Commit(aid); err == nil {
		t.Fatal("commit succeeded with root device down")
	}
	tables, _ := f.crashAndRecover()
	got := getAtomic(t, tables.Heap, 2)
	if !value.Equal(got.Base(), value.Int(0)) {
		t.Fatalf("installed = %s, want old version 0", value.String(got.Base()))
	}
	if !tables.Prepared[aid] {
		t.Fatal("intention lost")
	}
}

func TestCoordinatorRecords(t *testing.T) {
	f := newFixture(t)
	f.seed()
	aid := f.action()
	if err := f.store.Committing(aid, []ids.GuardianID{2, 3}); err != nil {
		t.Fatal(err)
	}
	tables, _ := f.crashAndRecover()
	if gids, ok := tables.Committing[aid]; !ok || len(gids) != 2 {
		t.Fatalf("Committing = %v", tables.Committing)
	}
	if err := f.store.Done(aid); err != nil {
		t.Fatal(err)
	}
	tables2, _ := f.crashAndRecover()
	if _, still := tables2.Committing[aid]; still {
		t.Fatal("done did not supersede committing")
	}
	if !tables2.Done[aid] {
		t.Fatal("done lost")
	}
}

func TestResumeAfterRecovery(t *testing.T) {
	f := newFixture(t)
	counter := f.seed()
	f.bump(counter, 3)
	tables, store2 := f.crashAndRecover()
	// Continue on the recovered store.
	got := getAtomic(t, tables.Heap, 2)
	aid := ids.ActionID{Coordinator: gP, Seq: 500}
	if err := got.AcquireWrite(aid); err != nil {
		t.Fatal(err)
	}
	got.Replace(aid, value.Int(4))
	if err := store2.Prepare(aid, object.MOS{got}); err != nil {
		t.Fatal(err)
	}
	if err := store2.Commit(aid); err != nil {
		t.Fatal(err)
	}
	got.Commit(aid)

	tables2, _ := f.crashAndRecover()
	final := getAtomic(t, tables2.Heap, 2)
	if !value.Equal(final.Base(), value.Int(4)) {
		t.Fatalf("counter = %s, want 4", value.String(final.Base()))
	}
}

func TestCodecRoundTrips(t *testing.T) {
	aid := ids.ActionID{Coordinator: 3, Seq: 9}
	ins := []install{{uid: 5, addr: 10, kind: object.KindAtomic}, {uid: 6, addr: 20, kind: object.KindMutex}}
	gotAid, gotIns, err := decodePrepared(encodePrepared(aid, ins))
	if err != nil || gotAid != aid || len(gotIns) != 2 || gotIns[1] != ins[1] {
		t.Fatalf("prepared round trip: %v %v %v", gotAid, gotIns, err)
	}
	table := map[ids.UID]mapEntry{4: {Addr: 7, Kind: object.KindMutex}}
	gotTable, err := decodeMap(encodeMap(table))
	if err != nil || gotTable[4] != table[4] {
		t.Fatalf("map round trip: %v %v", gotTable, err)
	}
	a2, g2, err := decodeOutcome(encodeOutcome(recCommitting, aid, []ids.GuardianID{8}))
	if err != nil || a2 != aid || len(g2) != 1 || g2[0] != 8 {
		t.Fatalf("outcome round trip: %v %v %v", a2, g2, err)
	}
}
